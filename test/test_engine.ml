(* The locality-aware game-solving engine: pruned search must agree
   with exhaustive enumeration on every instance, the neighbourhood
   cache must be invisible, and the Domain work-pool must be
   deterministic in the job count. *)

open Lph_core
open Helpers

let v2 () = Arbiter.of_local_algo ~id_radius:1 (Candidates.color_verifier 2)

let v3 () = Arbiter.of_local_algo ~id_radius:2 (Candidates.color_verifier 3)

(* a two-level gather verifier with a deliberately arbitrary ball-local
   predicate: the engines must agree whatever the arbiter computes *)
let two_level_verifier =
  Gather.algo ~name:"two-level-count" ~radius:1 ~levels:2 ~decide:(fun _ctx ball ->
      let parsed =
        List.map (fun e -> Certificates.split_list ~levels:2 e.Gather.cert) ball.Gather.entries
      in
      let count k = List.length (List.filter (fun ks -> List.nth ks k = "1") parsed) in
      count 0 >= count 1)

let engine_equivalence =
  ( "engine:pruned-vs-exhaustive",
    [
      qcheck ~count:60 "sigma 3col agrees on random graphs"
        (arb_graph ~max_nodes:5 ())
        (fun g ->
          let a = v3 () in
          let ids = global_ids g in
          let universes = [ Candidates.color_universe 3 ] in
          Game.sigma_accepts ~engine:`Pruned a g ~ids ~universes
          = Game.sigma_accepts ~engine:`Exhaustive a g ~ids ~universes);
      qcheck ~count:60 "pi 2col agrees on random graphs"
        (arb_graph ~max_nodes:5 ())
        (fun g ->
          let a = v2 () in
          let ids = global_ids g in
          let universes = [ Candidates.color_universe 2 ] in
          Game.pi_accepts ~engine:`Pruned a g ~ids ~universes
          = Game.pi_accepts ~engine:`Exhaustive a g ~ids ~universes);
      qcheck ~count:40 "sigma counter verifier agrees on random graphs"
        (arb_graph ~max_nodes:4 ())
        (fun g ->
          let a = Arbiter.of_local_algo ~id_radius:1 (Candidates.exact_counter_verifier ~cap:4) in
          let ids = global_ids g in
          let universes = [ Candidates.counter_universe ~bound:4 ] in
          Game.sigma_accepts ~engine:`Pruned a g ~ids ~universes
          = Game.sigma_accepts ~engine:`Exhaustive a g ~ids ~universes);
      qcheck ~count:25 "sigma2 and pi2 agree for a two-level arbiter"
        (arb_graph ~max_nodes:4 ())
        (fun g ->
          let a = Arbiter.of_local_algo ~id_radius:2 two_level_verifier in
          let ids = global_ids g in
          let universes = [ Game.of_choices [ "0"; "1" ]; Game.of_choices [ "0"; "1" ] ] in
          Game.sigma_accepts ~engine:`Pruned a g ~ids ~universes
          = Game.sigma_accepts ~engine:`Exhaustive a g ~ids ~universes
          && Game.pi_accepts ~engine:`Pruned a g ~ids ~universes
             = Game.pi_accepts ~engine:`Exhaustive a g ~ids ~universes);
      quick "opaque arbiters fall back to exhaustive search" (fun () ->
          let a = v3 () in
          let opaque =
            {
              a with
              Arbiter.locality = Arbiter.Opaque;
              verdicts = None;
              checker = Arbiter.opaque_checker;
            }
          in
          let g = Generators.cycle 5 in
          let ids = global_ids g in
          let universes = [ Candidates.color_universe 3 ] in
          check_bool "pruned request = exhaustive verdict"
            (Game.sigma_accepts ~engine:`Exhaustive a g ~ids ~universes)
            (Game.sigma_accepts ~engine:`Pruned opaque g ~ids ~universes));
      quick "known verdicts survive the pruned engine" (fun () ->
          let a2 = v2 () and a3 = v3 () in
          let check_cycle n k expected =
            let g = Generators.cycle n in
            let a = if k = 2 then a2 else a3 in
            check_bool
              (Printf.sprintf "C%d %d-colorable" n k)
              expected
              (Game.sigma_accepts a g ~ids:(global_ids g)
                 ~universes:[ Candidates.color_universe k ])
          in
          check_cycle 5 2 false;
          check_cycle 6 2 true;
          check_cycle 5 3 true;
          check_cycle 11 2 false;
          check_cycle 12 2 true);
    ] )

(* a single-level radius-2 verifier with an arbitrary ball predicate:
   engine agreement must not depend on the verdict's meaning *)
let parity_r2_verifier =
  Gather.algo ~name:"parity-r2" ~radius:2 ~levels:1 ~decide:(fun _ctx ball ->
      let ones = List.filter (fun e -> e.Gather.cert = "1") ball.Gather.entries in
      List.length ones mod 2 = 0)

let with_env name value f =
  let saved = Sys.getenv_opt name in
  Unix.putenv name value;
  Fun.protect ~finally:(fun () -> Unix.putenv name (Option.value saved ~default:"")) f

let sat_suite =
  ( "engine:sat",
    [
      qcheck ~count:40 "sigma 2col: all three engines agree"
        (arb_graph ~max_nodes:10 ())
        (fun g ->
          let a = v2 () in
          let ids = global_ids g in
          let universes = [ Candidates.color_universe 2 ] in
          let sat = Game.sigma_accepts ~engine:`Sat a g ~ids ~universes in
          sat = Game.sigma_accepts ~engine:`Pruned a g ~ids ~universes
          && sat = Game.sigma_accepts ~engine:`Exhaustive a g ~ids ~universes);
      qcheck ~count:30 "pi 3col: all three engines agree"
        (arb_graph ~max_nodes:6 ())
        (fun g ->
          let a = v3 () in
          let ids = global_ids g in
          let universes = [ Candidates.color_universe 3 ] in
          let sat = Game.pi_accepts ~engine:`Sat a g ~ids ~universes in
          sat = Game.pi_accepts ~engine:`Pruned a g ~ids ~universes
          && sat = Game.pi_accepts ~engine:`Exhaustive a g ~ids ~universes);
      qcheck ~count:25 "radius-2 verifier: all three engines agree"
        (arb_graph ~max_nodes:6 ())
        (fun g ->
          let a = Arbiter.of_local_algo ~id_radius:3 parity_r2_verifier in
          let ids = global_ids g in
          let universes = [ Game.of_choices [ "0"; "1" ] ] in
          let sat = Game.sigma_accepts ~engine:`Sat a g ~ids ~universes in
          sat = Game.sigma_accepts ~engine:`Pruned a g ~ids ~universes
          && sat = Game.sigma_accepts ~engine:`Exhaustive a g ~ids ~universes
          && Game.pi_accepts ~engine:`Sat a g ~ids ~universes
             = Game.pi_accepts ~engine:`Exhaustive a g ~ids ~universes);
      qcheck ~count:20 "two-level arbiter: sat agrees with exhaustive"
        (arb_graph ~max_nodes:4 ())
        (fun g ->
          let a = Arbiter.of_local_algo ~id_radius:2 two_level_verifier in
          let ids = global_ids g in
          let universes = [ Game.of_choices [ "0"; "1" ]; Game.of_choices [ "0"; "1" ] ] in
          Game.sigma_accepts ~engine:`Sat a g ~ids ~universes
          = Game.sigma_accepts ~engine:`Exhaustive a g ~ids ~universes
          && Game.pi_accepts ~engine:`Sat a g ~ids ~universes
             = Game.pi_accepts ~engine:`Exhaustive a g ~ids ~universes);
      qcheck ~count:30 "sat witness is valid and matches the game value"
        (arb_graph ~max_nodes:8 ())
        (fun g ->
          let a = v2 () in
          let ids = global_ids g in
          let universes = [ Candidates.color_universe 2 ] in
          match Game.eve_witness ~engine:`Sat a g ~ids ~universes with
          | Some w ->
              a.Arbiter.accepts g ~ids ~certs:[ w ]
              && Game.sigma_accepts ~engine:`Exhaustive a g ~ids ~universes
          | None -> not (Game.sigma_accepts ~engine:`Exhaustive a g ~ids ~universes));
      quick "known cycle verdicts survive the sat engine" (fun () ->
          List.iter
            (fun (n, k, expected) ->
              let g = Generators.cycle n in
              let a = if k = 2 then v2 () else v3 () in
              check_bool
                (Printf.sprintf "C%d %d-colorable" n k)
                expected
                (Game.sigma_accepts ~engine:`Sat a g ~ids:(global_ids g)
                   ~universes:[ Candidates.color_universe k ]))
            [ (5, 2, false); (6, 2, true); (5, 3, true); (11, 2, false); (12, 2, true) ]);
      quick "LPH_ENGINE selects the engine under `Auto" (fun () ->
          let g = Generators.cycle 7 in
          let a = v2 () in
          let ids = global_ids g in
          let universes = [ Candidates.color_universe 2 ] in
          let expected = Game.sigma_accepts ~engine:`Exhaustive a g ~ids ~universes in
          List.iter
            (fun e ->
              check_bool e expected (with_env "LPH_ENGINE" e (fun () -> Game.sigma_accepts a g ~ids ~universes)))
            [ "sat"; "pruned"; "exhaustive"; "SAT"; "cegar" ];
          match with_env "LPH_ENGINE" "dpll" (fun () -> Game.sigma_accepts a g ~ids ~universes) with
          | _ -> Alcotest.fail "expected Invalid_argument"
          | exception Invalid_argument _ -> ());
      quick "over-budget compiles fall back to pruned search" (fun () ->
          with_env "LPH_SAT_BUDGET" "1" (fun () ->
              (* fresh graph: the compile cache is keyed per graph *)
              let g = Generators.cycle 6 in
              let a = v2 () in
              let ids = global_ids g in
              let universes = [ Candidates.color_universe 2 ] in
              check_bool "compile refused" true (Game_sat.compile a g ~ids ~universes = None);
              check_bool "verdict still correct" true
                (Game.sigma_accepts ~engine:`Sat a g ~ids ~universes)));
      quick "compiled instance re-solves incrementally across prefixes" (fun () ->
          let g = Generators.cycle 5 in
          let a = Arbiter.of_local_algo ~id_radius:2 two_level_verifier in
          let ids = global_ids g in
          let universes = [ Game.of_choices [ "0"; "1" ]; Game.of_choices [ "0"; "1" ] ] in
          match Game_sat.compile a g ~ids ~universes with
          | None -> Alcotest.fail "two-level game should compile"
          | Some inst ->
              check_bool "tables tabulated" true (Game_sat.table_entries inst > 0);
              let prefixes =
                List.map Array.of_list
                  [ [ "0"; "0"; "0"; "0"; "0" ]; [ "1"; "0"; "1"; "0"; "1" ]; [ "1"; "1"; "1"; "1"; "1" ] ]
              in
              List.iter
                (fun k1 ->
                  let reference =
                    Game.solve ~first:Game.Eve ~n:5 ~universes:[ List.tl universes |> List.hd ]
                      ~arbiter:(fun certs -> a.Arbiter.accepts g ~ids ~certs:(k1 :: certs))
                  in
                  check_bool "leaf agrees with enumeration" reference
                    (Option.is_some (Game_sat.eve_leaf inst ~prefix:[ k1 ])))
                prefixes;
              check_bool "solver worked incrementally" true
                ((Game_sat.solver_stats inst).decisions > 0));
      quick "out-of-universe prefixes are rejected" (fun () ->
          let g = Generators.cycle 5 in
          let a = Arbiter.of_local_algo ~id_radius:2 two_level_verifier in
          let ids = global_ids g in
          let universes = [ Game.of_choices [ "0"; "1" ]; Game.of_choices [ "0"; "1" ] ] in
          match Game_sat.compile a g ~ids ~universes with
          | None -> Alcotest.fail "two-level game should compile"
          | Some inst -> (
              match Game_sat.eve_leaf inst ~prefix:[ [| "2"; "0"; "0"; "0"; "0" |] ] with
              | _ -> Alcotest.fail "expected Invalid_argument"
              | exception Invalid_argument _ -> ()));
    ] )

(* a Σ2 game that is always false but keeps an optimistic Eve proposer
   busy: accept iff the challenge echoes the claim at the node, so every
   claim has an all-accepting completion (the proposer sees 2^n models)
   while Adam refutes each one — the duel is forced through several
   refinement rounds, which the cap and stats tests rely on *)
let echo_verifier =
  Gather.algo ~name:"echo-two-level" ~radius:1 ~levels:2 ~decide:(fun _ctx ball ->
      match List.find_opt (fun e -> e.Gather.dist = 0) ball.Gather.entries with
      | None -> false
      | Some self -> (
          match Certificates.split_list ~levels:2 self.Gather.cert with
          | [ k1; k2 ] -> k1 = k2
          | _ -> false))

let bit_universes = [ Game.of_choices [ "0"; "1" ]; Game.of_choices [ "0"; "1" ] ]

let robust_universes = [ Candidates.color_universe 2; Candidates.color_universe 2 ]

let all_bit_certs n =
  List.map Array.of_list (List.of_seq (Combinat.product (List.init n (fun _ -> [ "0"; "1" ]))))

let cegar_suite =
  ( "engine:cegar",
    [
      qcheck ~count:40 "one-level games: cegar agrees with the other engines"
        (arb_graph ~max_nodes:8 ())
        (fun g ->
          let a = v2 () in
          let ids = global_ids g in
          let universes = [ Candidates.color_universe 2 ] in
          let cegar = Game.sigma_accepts ~engine:`Cegar a g ~ids ~universes in
          cegar = Game.sigma_accepts ~engine:`Sat a g ~ids ~universes
          && cegar = Game.sigma_accepts ~engine:`Pruned a g ~ids ~universes
          && Game.pi_accepts ~engine:`Cegar a g ~ids ~universes
             = Game.pi_accepts ~engine:`Pruned a g ~ids ~universes);
      qcheck ~count:20 "two-level arbiter: all four engines agree"
        (arb_graph ~max_nodes:4 ())
        (fun g ->
          let a = Arbiter.of_local_algo ~id_radius:2 two_level_verifier in
          let ids = global_ids g in
          let cegar_s = Game.sigma_accepts ~engine:`Cegar a g ~ids ~universes:bit_universes in
          let cegar_p = Game.pi_accepts ~engine:`Cegar a g ~ids ~universes:bit_universes in
          List.for_all
            (fun e ->
              cegar_s = Game.sigma_accepts ~engine:e a g ~ids ~universes:bit_universes
              && cegar_p = Game.pi_accepts ~engine:e a g ~ids ~universes:bit_universes)
            [ `Exhaustive; `Pruned; `Sat ]);
      qcheck ~count:25 "robust-2col Σ2 value is exactly 2-COLORABLE"
        (arb_graph ~max_nodes:5 ())
        (fun g ->
          let a = Arbiter.of_local_algo ~id_radius:1 Candidates.robust_two_col_verifier in
          Game.sigma_accepts ~engine:`Cegar a g ~ids:(global_ids g) ~universes:robust_universes
          = Properties.two_colorable g);
      quick "known verdicts survive the cegar engine" (fun () ->
          List.iter
            (fun (n, k, expected) ->
              let g = Generators.cycle n in
              let a = if k = 2 then v2 () else v3 () in
              check_bool
                (Printf.sprintf "C%d %d-colorable" n k)
                expected
                (Game.sigma_accepts ~engine:`Cegar a g ~ids:(global_ids g)
                   ~universes:[ Candidates.color_universe k ]))
            [ (5, 2, false); (6, 2, true); (5, 3, true) ];
          List.iter
            (fun (n, expected) ->
              let g = Generators.cycle n in
              let a = Arbiter.of_local_algo ~id_radius:1 Candidates.robust_two_col_verifier in
              check_bool
                (Printf.sprintf "C%d robust-2col" n)
                expected
                (Game.sigma_accepts ~engine:`Cegar a g ~ids:(global_ids g)
                   ~universes:robust_universes))
            [ (5, false); (6, true); (11, false); (12, true) ]);
      quick "cegar winning move on C6 robust-2col survives every challenge" (fun () ->
          let g = Generators.cycle 6 in
          let a = Arbiter.of_local_algo ~id_radius:1 Candidates.robust_two_col_verifier in
          let ids = global_ids g in
          match Game_cegar.instance ~eve_first:true a g ~ids ~universes:robust_universes with
          | None -> Alcotest.fail "robust game should build"
          | Some d -> (
              check_bool "C6 won" true (Game_cegar.value d = Some true);
              match Game_cegar.winning_move d with
              | None -> Alcotest.fail "a winning first move should be recorded"
              | Some w ->
                  List.iter
                    (fun (u, v) -> check_bool "claim is a proper colouring" false (w.(u) = w.(v)))
                    (Graph.edges g);
                  check_bool "no challenge defeats it" true
                    (List.for_all
                       (fun k2 -> a.Arbiter.accepts g ~ids ~certs:[ w; k2 ])
                       (all_bit_certs 6));
                  check_bool "proposals counted" true ((Game_cegar.stats d).proposals >= 1)));
      quick "echo duel takes several refinement rounds and reports them" (fun () ->
          let g = Generators.path 3 in
          let a = Arbiter.of_local_algo ~id_radius:1 echo_verifier in
          let ids = global_ids g in
          (match Game_cegar.instance ~eve_first:true a g ~ids ~universes:bit_universes with
          | None -> Alcotest.fail "echo game should build"
          | Some d ->
              check_bool "sigma2 echo is false" true (Game_cegar.value d = Some false);
              let s = Game_cegar.stats d in
              check_bool "several rounds" true (s.Game_cegar.iterations >= 2);
              check_bool "cubes learned" true (s.Game_cegar.cubes >= 1);
              check_bool "every proposal died" true
                (s.Game_cegar.refutations = s.Game_cegar.proposals);
              check_bool "no winner recorded" true (Game_cegar.winning_move d = None);
              check_bool "proposer solver worked" true
                ((Game_cegar.proposer_stats d).Sat_solver.decisions > 0));
          check_bool "pi2 echo is true" true
            (Game.pi_accepts ~engine:`Cegar a g ~ids ~universes:bit_universes));
      qcheck ~count:10 "blocking cubes only bar defeated proposals"
        (arb_graph ~max_nodes:3 ())
        (fun g ->
          let a = Arbiter.of_local_algo ~id_radius:2 two_level_verifier in
          let ids = global_ids g in
          let replies = all_bit_certs (Graph.card g) in
          List.for_all
            (fun eve_first ->
              match Game_cegar.instance ~eve_first a g ~ids ~universes:bit_universes with
              | None -> false
              | Some d ->
                  ignore (Game_cegar.value d);
                  List.for_all
                    (fun (level, cube) ->
                      level <> 0
                      || List.for_all
                           (fun k1 ->
                             List.exists (fun (u, c) -> k1.(u) <> c) cube
                             ||
                             (* the cube only bars proposals the opponent
                                really defeats *)
                             let accepts k2 = a.Arbiter.accepts g ~ids ~certs:[ k1; k2 ] in
                             if eve_first then List.exists (fun k2 -> not (accepts k2)) replies
                             else List.exists accepts replies)
                           replies)
                    (Game_cegar.cubes d))
            [ true; false ]);
      quick "LPH_CEGAR_MAX_ITERS caps the duel and the engine falls back" (fun () ->
          with_env "LPH_CEGAR_MAX_ITERS" "1" (fun () ->
              let g = Generators.path 3 in
              let a = Arbiter.of_local_algo ~id_radius:1 echo_verifier in
              let ids = global_ids g in
              check_bool "duel reports don't know" true
                (Game_cegar.solve ~eve_first:true a g ~ids ~universes:bit_universes = None);
              check_bool "engine verdict still correct via fallback" false
                (Game.sigma_accepts ~engine:`Cegar a g ~ids ~universes:bit_universes));
          match
            with_env "LPH_CEGAR_MAX_ITERS" "zero" (fun () ->
                let g = Generators.path 3 in
                let a = Arbiter.of_local_algo ~id_radius:1 echo_verifier in
                Game.sigma_accepts ~engine:`Cegar a g ~ids:(global_ids g)
                  ~universes:bit_universes)
          with
          | _ -> Alcotest.fail "expected Invalid_argument"
          | exception Invalid_argument _ -> ());
      quick "over-budget compiles make cegar fall back" (fun () ->
          with_env "LPH_SAT_BUDGET" "1" (fun () ->
              let g5 = Generators.cycle 5 and g6 = Generators.cycle 6 in
              let a = Arbiter.of_local_algo ~id_radius:1 Candidates.robust_two_col_verifier in
              check_bool "compile refused" true
                (Game_cegar.solve ~eve_first:true a g5 ~ids:(global_ids g5)
                   ~universes:robust_universes
                = None);
              check_bool "C5 verdict via the fallback ladder" false
                (Game.sigma_accepts ~engine:`Cegar a g5 ~ids:(global_ids g5)
                   ~universes:robust_universes);
              check_bool "C6 verdict via the fallback ladder" true
                (Game.sigma_accepts ~engine:`Cegar a g6 ~ids:(global_ids g6)
                   ~universes:robust_universes)));
      quick "cegar sweeps are deterministic in the job count" (fun () ->
          let saved = Sys.getenv_opt "LPH_JOBS" in
          let with_jobs j f =
            Unix.putenv "LPH_JOBS" j;
            let y = f () in
            Unix.putenv "LPH_JOBS" (match saved with Some s -> s | None -> "2");
            y
          in
          let sweep () = Separations.sigma2_game_sweep ~engine:`Cegar [ 3; 5 ] in
          let r1 = with_jobs "1" sweep in
          let r4 = with_jobs "4" sweep in
          check_bool "identical across pool sizes" true (r1 = r4);
          List.iter
            (fun (n, outcome) ->
              check_bool
                (Printf.sprintf "n=%d separation" n)
                true
                (outcome = (false, false, true, true)))
            r4);
    ] )

let witness_suite =
  ( "engine:eve-witness",
    [
      qcheck ~count:50 "pruned witness is valid and matches the game value"
        (arb_graph ~max_nodes:5 ())
        (fun g ->
          let a = v3 () in
          let ids = global_ids g in
          let universes = [ Candidates.color_universe 3 ] in
          match Game.eve_witness ~engine:`Pruned a g ~ids ~universes with
          | Some w ->
              a.Arbiter.accepts g ~ids ~certs:[ w ]
              && Game.sigma_accepts ~engine:`Exhaustive a g ~ids ~universes
          | None -> not (Game.sigma_accepts ~engine:`Exhaustive a g ~ids ~universes));
      quick "witness on C6 2col is a proper colouring" (fun () ->
          let g = Generators.cycle 6 in
          let a = v2 () in
          let ids = global_ids g in
          match Game.eve_witness a g ~ids ~universes:[ Candidates.color_universe 2 ] with
          | None -> Alcotest.fail "C6 should be 2-colorable"
          | Some w ->
              List.iter
                (fun (u, v) -> check_bool "adjacent nodes differ" false (w.(u) = w.(v)))
                (Graph.edges g));
    ] )

let neighborhood_suite =
  ( "engine:neighborhood-cache",
    [
      qcheck ~count:80 "distance agrees with the cached distance row"
        (arb_graph ~max_nodes:7 ())
        (fun g ->
          let n = Graph.card g in
          List.for_all
            (fun u ->
              let row = Neighborhood.distances g u in
              List.for_all (fun v -> Neighborhood.distance g u v = row.(v)) (Graph.nodes g)
              && Array.length row = n)
            (Graph.nodes g));
      qcheck ~count:80 "ball = nodes within the cached distance"
        (arb_graph ~max_nodes:7 ())
        (fun g ->
          List.for_all
            (fun u ->
              let row = Neighborhood.distances g u in
              List.for_all
                (fun radius ->
                  Neighborhood.ball g ~radius u
                  = List.filter (fun v -> row.(v) <= radius) (Graph.nodes g))
                [ 0; 1; 2; 3 ])
            (Graph.nodes g));
      qcheck ~count:50 "cached results equal a fresh structurally-equal graph's"
        (arb_graph ~max_nodes:6 ())
        (fun g ->
          (* force the cache on g, then rebuild the same graph with a
             fresh uid and empty cache: answers must coincide *)
          List.iter (fun u -> ignore (Neighborhood.distances g u)) (Graph.nodes g);
          let g' = Graph.make ~labels:(Graph.labels g) ~edges:(Graph.edges g) in
          Graph.uid g <> Graph.uid g'
          && List.for_all
               (fun u ->
                 Neighborhood.distances g u = Neighborhood.distances g' u
                 && Neighborhood.ball g ~radius:2 u = Neighborhood.ball g' ~radius:2 u)
               (Graph.nodes g));
      quick "distance early-exit on a long cycle" (fun () ->
          let g = Generators.cycle 64 in
          check_int "adjacent" 1 (Neighborhood.distance g 0 1);
          check_int "opposite" 32 (Neighborhood.distance g 0 32);
          check_int "self" 0 (Neighborhood.distance g 17 17));
    ] )

let parallel_suite =
  ( "engine:parallel-pool",
    [
      quick "map matches List.map for every job count" (fun () ->
          let xs = List.init 100 Fun.id in
          let f x = (x * x) + 7 in
          List.iter
            (fun jobs ->
              check_bool
                (Printf.sprintf "jobs=%d" jobs)
                true
                (Parallel.map ~jobs f xs = List.map f xs))
            [ 1; 2; 4 ]);
      quick "exists and for_all match the List equivalents" (fun () ->
          let xs = List.init 60 Fun.id in
          List.iter
            (fun jobs ->
              check_bool "exists hit" true (Parallel.exists ~jobs (fun x -> x = 41) xs);
              check_bool "exists miss" false (Parallel.exists ~jobs (fun x -> x > 100) xs);
              check_bool "for_all holds" true (Parallel.for_all ~jobs (fun x -> x < 60) xs);
              check_bool "for_all fails" false (Parallel.for_all ~jobs (fun x -> x <> 13) xs))
            [ 1; 4 ]);
      quick "find_map_first returns the lowest-index witness" (fun () ->
          let xs = List.init 100 Fun.id in
          let f x = if x mod 7 = 3 then Some (x * 2) else None in
          List.iter
            (fun jobs ->
              check_bool
                (Printf.sprintf "jobs=%d" jobs)
                true
                (Parallel.find_map_first ~jobs f xs = Some 6))
            [ 1; 2; 4 ];
          check_bool "no hit" true (Parallel.find_map_first ~jobs:4 (fun _ -> None) xs = None));
      quick "worker exceptions reach the caller" (fun () ->
          let xs = List.init 32 Fun.id in
          match Parallel.map ~jobs:4 (fun x -> if x = 17 then failwith "boom" else x) xs with
          | _ -> Alcotest.fail "expected Failure"
          | exception Failure m -> check_string "message" "boom" m);
      quick "empty and singleton inputs" (fun () ->
          check_bool "map []" true (Parallel.map ~jobs:4 Fun.id [] = ([] : int list));
          check_bool "exists []" false (Parallel.exists ~jobs:4 (fun _ -> true) ([] : int list));
          check_bool "map [x]" true (Parallel.map ~jobs:4 succ [ 41 ] = [ 42 ]));
      quick "LPH_JOBS=1 and LPH_JOBS=4 give identical game results" (fun () ->
          let saved = Sys.getenv_opt "LPH_JOBS" in
          let with_jobs j f =
            Unix.putenv "LPH_JOBS" j;
            let y = f () in
            Unix.putenv "LPH_JOBS" (match saved with Some s -> s | None -> "2");
            y
          in
          let solve () =
            let c11 = Generators.cycle 11 and c9 = Generators.cycle 9 in
            let a2 = v2 () and a3 = v3 () in
            ( Game.sigma_accepts a2 c11 ~ids:(global_ids c11)
                ~universes:[ Candidates.color_universe 2 ],
              Game.sigma_accepts a3 c9 ~ids:(global_ids c9)
                ~universes:[ Candidates.color_universe 3 ],
              Game.eve_witness a3 c9 ~ids:(global_ids c9)
                ~universes:[ Candidates.color_universe 3 ] )
          in
          let r1 = with_jobs "1" solve in
          let r4 = with_jobs "4" solve in
          check_bool "verdicts and witness identical" true (r1 = r4));
    ] )

let combinat_suite =
  ( "engine:combinat",
    [
      qcheck ~count:100 "product equals the naive reference, in order"
        QCheck.(list_of_size (QCheck.Gen.int_bound 3) (list_of_size (QCheck.Gen.int_bound 3) small_int))
        (fun lists ->
          let rec reference = function
            | [] -> [ [] ]
            | xs :: rest ->
                let tails = reference rest in
                List.concat_map (fun x -> List.map (fun t -> x :: t) tails) xs
          in
          List.of_seq (Combinat.product lists) = reference lists);
      quick "tuples enumerates k-fold products" (fun () ->
          check_int "3^2" 9 (Seq.length (Combinat.tuples [ 1; 2; 3 ] 2));
          check_int "2^3" 8 (Seq.length (Combinat.tuples [ 0; 1 ] 3));
          check_bool "order" true
            (List.of_seq (Combinat.tuples [ 0; 1 ] 2) = [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ]));
      quick "product stays lazy" (fun () ->
          (* 2^62 assignments: materialising would never finish *)
          let huge = List.init 62 (fun _ -> [ 0; 1 ]) in
          match Seq.uncons (Combinat.product huge) with
          | Some (first, _) -> check_int "head length" 62 (List.length first)
          | None -> Alcotest.fail "product of non-empty lists is non-empty");
    ] )

let runner_suite =
  ( "engine:runner",
    [
      quick "duplicate identifiers among neighbours raise a typed error" (fun () ->
          let g = Generators.star 3 in
          let ids = [| "00"; "01"; "01"; "10" |] in
          match Runner.run Candidates.eulerian_decider g ~ids () with
          | _ -> Alcotest.fail "expected Error.Error (Protocol_error _)"
          | exception Error.Error (Error.Protocol_error { what = "Runner.run"; node = Some 0; _ }) ->
              ());
      quick "globally unique identifiers run fine" (fun () ->
          let g = Generators.star 3 in
          check_bool "star accepted by eulerian? (odd degrees)" false
            (Runner.decides Candidates.eulerian_decider g ~ids:(global_ids g) ()));
    ] )

let suites =
  [
    engine_equivalence;
    sat_suite;
    cegar_suite;
    witness_suite;
    neighborhood_suite;
    parallel_suite;
    combinat_suite;
    runner_suite;
  ]
