let () =
  Alcotest.run "lph"
    (Test_util.suites @ Test_graph.suites @ Test_logic.suites @ Test_restrictor.suites @ Test_machine.suites @ Test_hierarchy.suites
    @ Test_boolean.suites @ Test_reductions.suites @ Test_fagin.suites
    @ Test_picture.suites @ Test_automata.suites @ Test_robustness.suites @ Test_engine.suites
    @ Test_wire.suites @ Test_faults.suites @ Test_analysis.suites @ Test_serve.suites
    @ Test_faultlab.suites @ Test_optimum.suites)
