open Lph_core
open Helpers
module GF = Graph_formulas

let node_only g t = List.for_all (fun e -> e < Graph.card g) t

let compile_tests =
  [
    quick "levels and radii of compiled formulas" (fun () ->
        let c0 = Fagin.compile GF.all_selected in
        check_int "level 0" 0 (List.length c0.Fagin.blocks);
        check_bool "no first player" true (c0.Fagin.first = None);
        let c1 = Fagin.compile GF.three_colorable in
        check_int "level 1" 1 (List.length c1.Fagin.blocks);
        check_bool "eve first" true (c1.Fagin.first = Some Game.Eve);
        let c3 = Fagin.compile GF.not_all_selected in
        check_int "level 3" 3 (List.length c3.Fagin.blocks);
        let c4 = Fagin.compile GF.non_3_colorable in
        check_bool "adam first" true (c4.Fagin.first = Some Game.Adam));
    quick "rejects non-hierarchy sentences" (fun () ->
        Alcotest.check_raises "shape"
          (Invalid_argument "Fagin.Compile: sentence is not in the local second-order hierarchy")
          (fun () -> ignore (Fagin.compile (Formula.Exists ("x", Formula.Unary (1, "x"))))));
    quick "level 0: compiled ALL-SELECTED decider" (fun () ->
        let c = Fagin.compile GF.all_selected in
        List.iter
          (fun g ->
            check_bool (graph_print g) (Properties.all_selected g)
              (Fagin.game_accepts c g ~ids:(global_ids g)))
          [
            Generators.cycle 3;
            Graph.with_labels (Generators.cycle 3) [| "1"; "0"; "1" |];
            Graph.singleton "1";
            Graph.singleton "0";
            Generators.path 4;
          ]);
    quick "level 1: compiled 2-COLORABLE verifier" (fun () ->
        let c = Fagin.compile GF.two_colorable in
        List.iter
          (fun g ->
            check_bool (graph_print g) (Properties.two_colorable g)
              (Fagin.game_accepts ~tuple_filter:(node_only g) c g ~ids:(global_ids g)))
          [ Generators.path 2; Generators.path 3; Generators.cycle 3 ]);
    quick "level 1: full fragment universes on a 2-node graph" (fun () ->
        (* no tuple filter at all: exercises the default universes *)
        let c = Fagin.compile GF.two_colorable in
        let g = Generators.path 2 in
        check_bool "P2" true (Fagin.game_accepts c g ~ids:(global_ids g)));
    quick "level 1: sat engine agrees on compiled 2-COLORABLE" (fun () ->
        let c = Fagin.compile GF.two_colorable in
        List.iter
          (fun g ->
            let ids = global_ids g in
            check_bool (graph_print g)
              (Fagin.game_accepts ~engine:`Pruned ~tuple_filter:(node_only g) c g ~ids)
              (Fagin.game_accepts ~engine:`Sat ~tuple_filter:(node_only g) c g ~ids))
          [ Generators.path 2; Generators.path 3; Generators.cycle 3; Generators.cycle 5 ]);
    slow "level 3: compiled NOT-ALL-SELECTED game" (fun () ->
        let c = Fagin.compile GF.not_all_selected in
        List.iter
          (fun g ->
            check_bool (graph_print g) (Properties.not_all_selected g)
              (Fagin.game_accepts ~tuple_filter:(node_only g) c g ~ids:(global_ids g)))
          [
            Graph.with_labels (Generators.path 2) [| "0"; "1" |];
            Generators.path 2;
          ]);
  ]

let machine m input = Tableau.accepts m ~input ~time:(Tableau.default_time input)

let tableau_tests =
  [
    quick "direct simulation" (fun () ->
        check_bool "all ones yes" true (machine Tableau.all_ones "1111");
        check_bool "all ones no" false (machine Tableau.all_ones "1101");
        check_bool "even yes" true (machine Tableau.even_ones "1010");
        check_bool "even no" false (machine Tableau.even_ones "111"));
    quick "tableau CNF agrees with simulation" (fun () ->
        List.iter
          (fun input ->
            List.iter
              (fun m ->
                let time = Tableau.default_time input in
                check_bool
                  (Printf.sprintf "%s on %S" m.Tableau.name input)
                  (Tableau.accepts m ~input ~time)
                  (Sat_solver.satisfiable (Tableau.tableau m ~input ~time)))
              [ Tableau.all_ones; Tableau.even_ones ])
          [ ""; "0"; "1"; "11"; "10"; "110"; "1111"; "1011" ]);
    qcheck ~count:25 "tableau ≡ simulation on random inputs"
      QCheck.(string_gen_of_size (QCheck.Gen.return 5) (QCheck.Gen.map (fun b -> if b then '1' else '0') QCheck.Gen.bool))
      (fun input ->
        let time = Tableau.default_time input in
        Tableau.accepts Tableau.even_ones ~input ~time
        = Sat_solver.satisfiable (Tableau.tableau Tableau.even_ones ~input ~time));
    quick "the NP-hardness shape: tableau is CNF over poly many vars" (fun () ->
        let input = "10101" in
        let cnf = Tableau.tableau Tableau.even_ones ~input ~time:(Tableau.default_time input) in
        let vars = Cnf.vars cnf in
        check_bool "polynomially many" true (List.length vars < 1000);
        check_bool "nonempty" true (List.length cnf > 0));
  ]

let suites = [ ("fagin:compile", compile_tests); ("fagin:tableau", tableau_tests) ]

(* A Π1^LFO sentence: ∀X ∀°x (X(x) → IsSelected(x)) defines ALL-SELECTED
   with Adam moving first — exercising the Π side of the compiler. *)
let pi_tests =
  let pi1_all_selected =
    Formula.Forall_so
      ( "X",
        1,
        GF.forall_node "x"
          (Formula.Implies (Formula.App ("X", [ "x" ]), GF.is_selected "x")) )
  in
  [
    quick "the sentence is Π1 and not Σ1" (fun () ->
        check_bool "pi1" true (Logic_syntax.in_pi_lfo 1 pi1_all_selected);
        check_bool "not sigma1" false (Logic_syntax.in_sigma_lfo 1 pi1_all_selected));
    quick "compiled Π1 arbiter plays Adam first" (fun () ->
        let c = Fagin.compile pi1_all_selected in
        check_bool "adam" true (c.Fagin.first = Some Game.Adam);
        List.iter
          (fun g ->
            let ids = global_ids g in
            let node_only t = List.for_all (fun e -> e < Graph.card g) t in
            check_bool (graph_print g) (Properties.all_selected g)
              (Fagin.game_accepts ~tuple_filter:node_only c g ~ids))
          [
            Generators.cycle 3;
            Graph.with_labels (Generators.cycle 3) [| "1"; "0"; "1" |];
            Generators.path 2;
            Graph.singleton "0";
          ]);
    quick "model checking agrees" (fun () ->
        List.iter
          (fun g ->
            check_bool (graph_print g) (Properties.all_selected g)
              (Graph_formulas.holds g pi1_all_selected))
          [ Generators.cycle 3; Graph.with_labels (Generators.path 2) [| "1"; "0" |] ]);
  ]

let suites = suites @ [ ("fagin:pi-side", pi_tests) ]

(* the compiled arbiters declare an (r,p) certificate bound that their
   own fragment universes respect *)
let bound_tests =
  [
    quick "fragment certificates satisfy the declared bound" (fun () ->
        List.iter
          (fun phi ->
            let compiled = Fagin.compile phi in
            match compiled.Fagin.arbiter.Arbiter.cert_bound with
            | None -> Alcotest.fail "compiled arbiter should declare a bound"
            | Some bound ->
                List.iter
                  (fun g ->
                    let ids = global_ids g in
                    let universes = Fagin.fragment_universes compiled g ~ids in
                    List.iter
                      (fun universe ->
                        Seq.iter
                          (fun assignment ->
                            check_bool "bounded" true
                              (Certificates.is_bounded g ~ids bound assignment))
                          (Game.assignments ~n:(Graph.card g) universe))
                      universes)
                  [ Generators.path 2 ])
          [ GF.all_selected; GF.two_colorable ]);
  ]

let suites = suites @ [ ("fagin:bounds", bound_tests) ]
