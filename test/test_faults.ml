(* The fault-injection layer and its soundness guarantees.

   Four claims are under test. (1) Fault plans are deterministic: every
   injection decision is a pure function of the spec string, so any
   campaign failure replays from its seed. (2) The runner degrades
   explicitly: injected faults produce [Runner.Faulted] reports or
   typed errors, never untyped exceptions, and [Completed] certifies
   the result is identical to the fault-free run. (3) The wire boundary
   is typed: truncated and corrupted bytes decode or raise
   [Error.Decode_error] in both wire modes — no raw [Failure _] leaks.
   (4) Certificate tampering is harmless to soundness: no flipped or
   forged certificate makes a no-instance accept, for the Eulerian,
   colorability and SAT-GRAPH verifiers, across all three game
   engines. *)

open Lph_core
open Helpers

let with_env name value f =
  let saved = Sys.getenv_opt name in
  Unix.putenv name value;
  Fun.protect ~finally:(fun () -> Unix.putenv name (Option.value saved ~default:"")) f

let with_mode m f =
  let old = Codec.wire_mode () in
  Codec.set_wire_mode m;
  Fun.protect ~finally:(fun () -> Codec.set_wire_mode old) f

let run_repr (r : Runner.result) =
  (Graph.labels r.Runner.output, r.Runner.stats.Runner.rounds, r.Runner.stats.Runner.charges)

let astr_contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Fault plans: spec grammar, determinism, firing semantics *)

let plan_suite =
  ( "faults:plan",
    [
      quick "spec strings parse and round-trip" (fun () ->
          let p = Fault_plan.parse "corrupt,drop@0.25:42" in
          check_int "seed" 42 (Fault_plan.seed p);
          check_bool "rate" true (Fault_plan.rate p = 0.25);
          check_bool "has corrupt" true (Fault_plan.has p Fault_plan.Corrupt);
          check_bool "has drop" true (Fault_plan.has p Fault_plan.Drop);
          check_bool "no crash" false (Fault_plan.has p Fault_plan.Crash);
          check_string "round-trip" (Fault_plan.to_spec p)
            (Fault_plan.to_spec (Fault_plan.parse (Fault_plan.to_spec p))));
      quick "\"all\" enables every kind at the default rate" (fun () ->
          let p = Fault_plan.parse "all:7" in
          check_bool "rate" true (Fault_plan.rate p = 0.05);
          List.iter
            (fun k -> check_bool (Fault_plan.kind_name k) true (Fault_plan.has p k))
            Fault_plan.all_kinds;
          check_string "spec" "all:7" (Fault_plan.to_spec p));
      quick "malformed specs raise a typed Protocol_error naming the token" (fun () ->
          List.iter
            (fun (spec, token) ->
              match Fault_plan.parse spec with
              | _ -> Alcotest.failf "parse %S should have raised" spec
              | exception Error.Error (Error.Protocol_error { what; detail; _ }) ->
                  check_string "what" "Fault_plan.parse" what;
                  if token <> "" && not (astr_contains detail token) then
                    Alcotest.failf "parse %S: detail %S does not name token %S" spec detail token
              | exception e ->
                  Alcotest.failf "parse %S raised untyped %s" spec (Printexc.to_string e))
            [
              ("", "no seed");
              ("all", "no seed");
              ("all:x", "\"x\"");
              ("bogus:3", "\"bogus\"");
              ("all@2:3", "\"2\"");
              ("all@x:1", "\"x\"");
              ("corrupt,:5", "\"\"");
              ("crash!:5", "empty target");
              ("crash!a:5", "\"a\"");
              ("drop^-1:5", "\"-1\"");
              ("=crash/one/0:5", "crash/one/0");
              ("=meteor/1/0:5", "\"meteor\"");
            ]);
      quick "LPH_FAULTS drives the ambient plan" (fun () ->
          with_env "LPH_FAULTS" "corrupt@0.5:9" (fun () ->
              match Fault_plan.of_env () with
              | Some p -> check_string "spec" "corrupt@0.5:9" (Fault_plan.to_spec p)
              | None -> Alcotest.fail "expected a plan");
          with_env "LPH_FAULTS" "off" (fun () ->
              check_bool "off means none" true (Fault_plan.of_env () = None));
          with_env "LPH_FAULTS" "" (fun () ->
              check_bool "empty means none" true (Fault_plan.of_env () = None)));
      qcheck "injection decisions are pure functions of the spec"
        QCheck.(quad small_nat small_nat small_nat arb_bitstring)
        (fun (seed, round, src, wire) ->
          let p = Fault_plan.make ~rate:0.5 ~kinds:Fault_plan.all_kinds seed in
          let p' = Fault_plan.parse (Fault_plan.to_spec p) in
          Fault_plan.tamper_wire p ~round ~src ~dst:(src + 1) wire
          = Fault_plan.tamper_wire p' ~round ~src ~dst:(src + 1) wire
          && Fault_plan.tamper_cert p ~node:src wire = Fault_plan.tamper_cert p' ~node:src wire
          && Fault_plan.crash_round p ~node:round = Fault_plan.crash_round p' ~node:round
          && Fault_plan.overcharge p ~round ~node:src = Fault_plan.overcharge p' ~round ~node:src);
      qcheck "zero-rate plans never fire"
        QCheck.(quad small_nat small_nat small_nat arb_bitstring)
        (fun (seed, round, src, wire) ->
          let p = Fault_plan.make ~rate:0.0 ~kinds:Fault_plan.all_kinds seed in
          Fault_plan.tamper_wire p ~round ~src ~dst:(src + 1) wire = (Some wire, None)
          && Fault_plan.tamper_cert p ~node:src wire = (wire, None)
          && Fault_plan.crash_round p ~node:src = None
          && Fault_plan.overcharge p ~round ~node:src = None
          && snd (Fault_plan.tamper_ids p [| "a"; "b"; "c" |]) = None);
      qcheck "a fired corruption always changes the wire"
        QCheck.(pair small_nat arb_bitstring)
        (fun (seed, wire) ->
          let p = Fault_plan.make ~rate:1.0 ~kinds:[ Fault_plan.Corrupt ] seed in
          match Fault_plan.tamper_wire p ~round:1 ~src:0 ~dst:1 wire with
          | Some w, Some f -> w <> wire && f.Error.fault_kind = "corrupt" && f.Error.seed = seed
          | Some w, None -> w = wire && wire = "" (* empty wires are never tampered *)
          | None, _ -> false (* corruption never drops *));
      qcheck "forgery fires even on empty certificates" QCheck.small_nat (fun seed ->
          let p = Fault_plan.make ~rate:1.0 ~kinds:[ Fault_plan.Cert_forge ] seed in
          match Fault_plan.tamper_cert p ~node:0 "" with
          | c, Some f -> c <> "" && f.Error.fault_kind = "cert-forge"
          | _, None -> false);
      qcheck "duplication copies one identifier and mutates nothing"
        QCheck.(pair small_nat (int_range 2 8))
        (fun (seed, n) ->
          let ids = Array.init n string_of_int in
          let p = Fault_plan.make ~rate:1.0 ~kinds:[ Fault_plan.Dup_id ] seed in
          let ids', f = Fault_plan.tamper_ids p ids in
          f <> None
          && ids = Array.init n string_of_int (* input untouched *)
          && List.length (List.sort_uniq compare (Array.to_list ids')) = n - 1);
    ] )

(* ------------------------------------------------------------------ *)
(* Runner outcomes: Completed certifies a no-op, faults degrade
   explicitly, nothing escapes untyped *)

let outcome_suite =
  ( "faults:outcomes",
    [
      quick "without a plan run_outcome is exactly run" (fun () ->
          let g = Generators.cycle 6 in
          let ids = global_ids g in
          let base = Runner.run Candidates.constant_label_decider g ~ids () in
          match Runner.run_outcome Candidates.constant_label_decider g ~ids () with
          | Runner.Completed r -> check_bool "identical" true (run_repr r = run_repr base)
          | Runner.Faulted _ | Runner.Degraded _ -> Alcotest.fail "no plan, no faults");
      quick "a zero-rate plan is a provable no-op" (fun () ->
          let g = Generators.cycle 6 in
          let ids = global_ids g in
          let base = Runner.run Candidates.constant_label_decider g ~ids () in
          let plan = Fault_plan.make ~rate:0.0 ~kinds:Fault_plan.all_kinds 3 in
          match Runner.run_outcome ~faults:plan Candidates.constant_label_decider g ~ids () with
          | Runner.Completed r -> check_bool "identical" true (run_repr r = run_repr base)
          | Runner.Faulted _ | Runner.Degraded _ -> Alcotest.fail "zero-rate plans never fire");
      quick "the ambient plan threads through Runner.run" (fun () ->
          let saved = Runner.fault_plan () in
          Fun.protect
            ~finally:(fun () -> Runner.set_fault_plan saved)
            (fun () ->
              let g = Generators.cycle 6 in
              let ids = global_ids g in
              let base = Runner.run Candidates.constant_label_decider g ~ids () in
              Runner.set_fault_plan
                (Some (Fault_plan.make ~rate:0.0 ~kinds:Fault_plan.all_kinds 11));
              match Runner.run_outcome Candidates.constant_label_decider g ~ids () with
              | Runner.Completed r -> check_bool "identical" true (run_repr r = run_repr base)
              | Runner.Faulted _ | Runner.Degraded _ -> Alcotest.fail "zero-rate plans never fire"));
      quick "crash-stop degrades to an explicit Faulted report" (fun () ->
          let g = Generators.cycle 8 in
          let ids = global_ids g in
          let base = Runner.run Candidates.constant_label_decider g ~ids () in
          let faulted = ref 0 in
          for seed = 0 to 19 do
            let plan = Fault_plan.make ~rate:1.0 ~kinds:[ Fault_plan.Crash ] seed in
            match Runner.run_outcome ~faults:plan Candidates.constant_label_decider g ~ids () with
            | Runner.Completed r -> check_bool "no-op seed" true (run_repr r = run_repr base)
            | Runner.Degraded _ -> Alcotest.fail "Degraded requires quorum mode"
            | Runner.Faulted rep ->
                incr faulted;
                check_bool "crash recorded" true (rep.Runner.faults <> []);
                List.iter
                  (fun f -> check_string "kind" "crash" f.Error.fault_kind)
                  rep.Runner.faults;
                (* a crashed neighbour may leave a gather ball forever
                   incomplete: that degradation must stay typed *)
                (match rep.Runner.error with
                | None | Some (Error.Protocol_error _) -> ()
                | Some e -> Alcotest.failf "unexpected error: %s" (Error.to_string e));
                check_bool "partial or error" true
                  (rep.Runner.partial <> None || rep.Runner.error <> None)
          done;
          check_bool "some seed crashed in time" true (!faulted > 0));
      quick "duplicate identifiers degrade to a typed protocol error" (fun () ->
          let g = Generators.star 4 in
          let ids = global_ids g in
          for seed = 0 to 19 do
            let plan = Fault_plan.make ~rate:1.0 ~kinds:[ Fault_plan.Dup_id ] seed in
            match Runner.run_outcome ~faults:plan Candidates.constant_label_decider g ~ids () with
            | Runner.Completed _ -> Alcotest.fail "rate-1 dup-id always fires"
            | Runner.Degraded _ -> Alcotest.fail "Degraded requires quorum mode"
            | Runner.Faulted rep -> (
                check_bool "dup-id recorded" true
                  (List.exists (fun f -> f.Error.fault_kind = "dup-id") rep.Runner.faults);
                match rep.Runner.error with
                | None | Some (Error.Protocol_error { what = "Runner.run"; _ }) -> ()
                | Some e -> Alcotest.failf "unexpected error: %s" (Error.to_string e))
          done);
      qcheck ~count:60 "all-kinds campaigns stay typed and Completed means no-op"
        QCheck.(pair (arb_graph ~max_nodes:6 ()) small_nat)
        (fun (g, seed) ->
          let ids = global_ids g in
          let algo = Candidates.color_verifier 3 in
          let certs = Array.init (Graph.card g) (fun u -> Bitstring.of_int (u mod 3)) in
          let base = Runner.run algo g ~ids ~cert_list:certs () in
          let plan = Fault_plan.make ~rate:0.3 ~kinds:Fault_plan.all_kinds seed in
          match Runner.run_outcome ~round_limit:50 ~faults:plan algo g ~ids ~cert_list:certs () with
          | Runner.Completed r -> run_repr r = run_repr base
          | Runner.Degraded _ -> false
          | Runner.Faulted rep ->
              (* a Faulted report always explains itself *)
              rep.Runner.faults <> [] || rep.Runner.error <> None || rep.Runner.diverged <> None);
    ] )

(* ------------------------------------------------------------------ *)
(* The wire boundary: malformed bytes raise typed errors only, in both
   transport modes (satellite S2) *)

let wire_codec = Codec.(pair (list int) (pair string bool))

let wire_suite =
  ( "faults:wire",
    [
      quick "every truncation decodes or raises a typed error (both modes)" (fun () ->
          List.iter
            (fun mode ->
              with_mode mode (fun () ->
                  let w = Codec.encode_wire wire_codec ([ 3; 0; 77; 1024 ], ("0110", true)) in
                  for keep = 0 to String.length w - 1 do
                    match Codec.decode_wire wire_codec (String.sub w 0 keep) with
                    | _ -> ()
                    | exception Error.Error (Error.Decode_error _) -> ()
                  done))
            [ Codec.Packed; Codec.Bits ]);
      quick "decode_bits rejects ragged and non-bit input with typed errors" (fun () ->
          List.iter
            (fun s ->
              match Codec.decode_bits Codec.int s with
              | _ -> Alcotest.failf "decode_bits %S should have raised" s
              | exception Error.Error (Error.Decode_error _) -> ())
            [ "0101010"; "0101010a"; "########" ]);
      qcheck ~count:150 "tampered wires never escape untyped (both modes)"
        QCheck.(pair small_nat (pair (small_list small_nat) arb_bitstring))
        (fun (seed, (xs, s)) ->
          let plan =
            Fault_plan.make ~rate:1.0 ~kinds:[ Fault_plan.Corrupt; Fault_plan.Truncate ] seed
          in
          List.for_all
            (fun mode ->
              with_mode mode (fun () ->
                  let w = Codec.encode_wire wire_codec (xs, (s, seed mod 2 = 0)) in
                  match Fault_plan.tamper_wire plan ~round:1 ~src:0 ~dst:1 w with
                  | None, _ -> true
                  | Some w', _ -> (
                      match Codec.decode_wire wire_codec w' with
                      | _ -> true
                      | exception Error.Error (Error.Decode_error _) -> true)))
            [ Codec.Packed; Codec.Bits ]);
      qcheck ~count:150 "decode_msg surfaces only typed decode errors (both modes)"
        QCheck.(pair small_nat (small_list arb_bitstring))
        (fun (seed, parts) ->
          let plan = Fault_plan.make ~rate:1.0 ~kinds:[ Fault_plan.Corrupt ] seed in
          List.for_all
            (fun mode ->
              with_mode mode (fun () ->
                  let msg = Local_algo.encode_msg Codec.(list string) parts in
                  match Fault_plan.tamper_wire plan ~round:1 ~src:0 ~dst:1 msg.Local_algo.wire with
                  | None, _ -> true
                  | Some w', _ -> (
                      let msg' = { Local_algo.wire = w'; cost = Codec.wire_bits w' } in
                      match Local_algo.decode_msg Codec.(list string) msg' with
                      | _ -> true
                      | exception Error.Error (Error.Decode_error _) -> true)))
            [ Codec.Packed; Codec.Bits ]);
      qcheck "formula labels parse or fail typed on bit noise" arb_bitstring (fun s ->
          match Bool_formula.of_label s with
          | _ -> true
          | exception Error.Error (Error.Decode_error _) -> true);
      qcheck "formula labels parse or fail typed on printable noise" QCheck.printable_string
        (fun s ->
          match Bool_formula.of_label s with
          | _ -> true
          | exception Error.Error (Error.Decode_error _) -> true);
    ] )

(* ------------------------------------------------------------------ *)
(* Certificate soundness: tampering never flips a no-instance to
   accept, for every verifier and every engine *)

let engines = [ `Exhaustive; `Pruned; `Sat ]

let attack_certs plan base = Array.mapi (fun u c -> fst (Fault_plan.tamper_cert plan ~node:u c)) base

let soundness_suite =
  ( "faults:soundness",
    [
      quick "level-0 deciders ignore tampered certificates" (fun () ->
          let g = Generators.star 3 in
          (* the centre has odd degree: a no-instance of EULERIAN *)
          let ids = global_ids g in
          check_bool "no-instance" false (Runner.decides Candidates.eulerian_decider g ~ids ());
          for seed = 0 to 49 do
            let plan = Fault_plan.make ~rate:1.0 ~kinds:[ Fault_plan.Cert_forge ] seed in
            let certs = attack_certs plan (Array.make (Graph.card g) "") in
            check_bool "still rejects" false
              (Runner.decides Candidates.eulerian_decider g ~ids ~cert_list:certs ())
          done);
      quick "no forged certificate 3-colours K4" (fun () ->
          let g = Generators.complete 4 in
          let ids = global_ids g in
          let a = Arbiter.of_local_algo ~id_radius:2 (Candidates.color_verifier 3) in
          let universes = [ Candidates.color_universe 3 ] in
          List.iter
            (fun e ->
              check_bool "game rejects" false (Game.sigma_accepts ~engine:e a g ~ids ~universes))
            engines;
          let base = Array.init 4 (fun u -> Bitstring.of_int (u mod 3)) in
          let fired = ref 0 in
          for seed = 0 to 199 do
            let plan =
              Fault_plan.make ~rate:0.9
                ~kinds:[ Fault_plan.Cert_flip; Fault_plan.Cert_forge ]
                seed
            in
            let certs = attack_certs plan base in
            if certs <> base then incr fired;
            check_bool "no accept flip" false (a.Arbiter.accepts g ~ids ~certs:[ certs ])
          done;
          check_bool "attack actually fired" true (!fired > 100));
      quick "no forged certificate 2-colours an odd cycle" (fun () ->
          let g = Generators.cycle 5 in
          let ids = global_ids g in
          let a = Arbiter.of_local_algo ~id_radius:2 (Candidates.color_verifier 2) in
          let universes = [ Candidates.color_universe 2 ] in
          List.iter
            (fun e ->
              check_bool "game rejects" false (Game.sigma_accepts ~engine:e a g ~ids ~universes))
            engines;
          let base = Array.init 5 (fun u -> Bitstring.of_int (u mod 2)) in
          for seed = 0 to 199 do
            let plan =
              Fault_plan.make ~rate:0.9
                ~kinds:[ Fault_plan.Cert_flip; Fault_plan.Cert_forge ]
                seed
            in
            check_bool "no accept flip" false
              (a.Arbiter.accepts g ~ids ~certs:[ attack_certs plan base ])
          done);
      quick "no forged valuation satisfies a contradictory Boolean graph" (fun () ->
          let bg =
            Boolean_graph.make (Generators.path 2)
              [| Bool_formula.Var "x"; Bool_formula.Not (Bool_formula.Var "x") |]
          in
          let ids = global_ids bg in
          let a = Arbiter.of_local_algo ~id_radius:2 Candidates.sat_graph_verifier in
          let universes = [ Candidates.sat_graph_universe bg ] in
          check_bool "unsatisfiable" false (Boolean_graph.satisfiable bg);
          List.iter
            (fun e ->
              check_bool "game rejects" false (Game.sigma_accepts ~engine:e a bg ~ids ~universes))
            engines;
          let base = [| "1"; "1" |] in
          for seed = 0 to 199 do
            let plan =
              Fault_plan.make ~rate:0.9
                ~kinds:[ Fault_plan.Cert_flip; Fault_plan.Cert_forge ]
                seed
            in
            check_bool "no accept flip" false
              (a.Arbiter.accepts bg ~ids ~certs:[ attack_certs plan base ])
          done);
      quick "the SAT-GRAPH verifier is complete on a satisfiable instance" (fun () ->
          let bg =
            Boolean_graph.make (Generators.path 2)
              [|
                Bool_formula.And (Bool_formula.Var "x", Bool_formula.Var "y");
                Bool_formula.Var "y";
              |]
          in
          let ids = global_ids bg in
          let a = Arbiter.of_local_algo ~id_radius:2 Candidates.sat_graph_verifier in
          let universes = [ Candidates.sat_graph_universe bg ] in
          List.iter
            (fun e ->
              check_bool "game accepts" true (Game.sigma_accepts ~engine:e a bg ~ids ~universes))
            engines);
      qcheck ~count:25 "the SAT-GRAPH game agrees with satisfiability on every engine"
        (QCheck.list_of_size (QCheck.Gen.int_range 1 3)
           (arb_bool_formula ~vars:[ "x"; "y" ] ~depth:2 ()))
        (fun fs ->
          let n = List.length fs in
          let g = Generators.path n in
          let bg = Boolean_graph.make g (Array.of_list fs) in
          let ids = global_ids bg in
          let a = Arbiter.of_local_algo ~id_radius:2 Candidates.sat_graph_verifier in
          let universes = [ Candidates.sat_graph_universe bg ] in
          let sat = Boolean_graph.satisfiable bg in
          List.for_all (fun e -> Game.sigma_accepts ~engine:e a bg ~ids ~universes = sat) engines);
    ] )

(* ------------------------------------------------------------------ *)
(* SAT-budget exhaustion: typed refusal and graceful fallback
   (satellite S3) *)

let budget_suite =
  ( "faults:sat-budget",
    [
      quick "an over-budget compile reports Resource_exhausted with its limit" (fun () ->
          with_env "LPH_SAT_BUDGET" "1" (fun () ->
              let g = Generators.cycle 7 in
              let ids = global_ids g in
              let a = Arbiter.of_local_algo ~id_radius:2 (Candidates.color_verifier 2) in
              match
                Game_sat.compile_explain a g ~ids ~universes:[ Candidates.color_universe 2 ]
              with
              | Error (Error.Resource_exhausted { what = "Game_sat"; limit = 1; _ }) -> ()
              | Error e -> Alcotest.failf "unexpected error: %s" (Error.to_string e)
              | Ok _ -> Alcotest.fail "expected a budget refusal"));
      quick "LPH_ENGINE=sat under a tripped budget still decides correctly" (fun () ->
          with_env "LPH_SAT_BUDGET" "1" (fun () ->
              with_env "LPH_ENGINE" "sat" (fun () ->
                  let a = Arbiter.of_local_algo ~id_radius:2 (Candidates.color_verifier 2) in
                  let universes = [ Candidates.color_universe 2 ] in
                  let g5 = Generators.cycle 5 in
                  check_bool "odd cycle rejects" false
                    (Game.sigma_accepts a g5 ~ids:(global_ids g5) ~universes);
                  let g6 = Generators.cycle 6 in
                  check_bool "even cycle accepts" true
                    (Game.sigma_accepts a g6 ~ids:(global_ids g6) ~universes))));
      qcheck ~count:20 "budget-tripped SAT agrees with exhaustive on random graphs"
        (arb_graph ~max_nodes:6 ())
        (fun g ->
          with_env "LPH_SAT_BUDGET" "1" (fun () ->
              let ids = global_ids g in
              let a = Arbiter.of_local_algo ~id_radius:2 (Candidates.color_verifier 2) in
              let universes = [ Candidates.color_universe 2 ] in
              Game.sigma_accepts ~engine:`Sat a g ~ids ~universes
              = Game.sigma_accepts ~engine:`Exhaustive a g ~ids ~universes));
    ] )

let suites = [ plan_suite; outcome_suite; wire_suite; soundness_suite; budget_suite ]
