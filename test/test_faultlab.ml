(* The fault axis: adversarial scheduling, soundness under Byzantine
   budgets, and graceful degradation.

   Four claims are under test. (1) Byzantine soundness: no fault plan
   within a model's budget f turns a no-instance's reject into an
   accept, for any of the four game engines — certificates are
   self-certifying, so tampering can only lose. (2) Crash-stop quorum
   semantics: [Runner.run_outcome ~quorum] answers [Degraded] exactly
   when every fired fault is a crash-stop of at most [quorum] nodes
   and the survivors re-derive the fault-free labels; anything else
   stays [Faulted]. (3) The adversarial search is deterministic: the
   same (workload, model, seed) yields the same verdict, schedule and
   replay spec whether the runtime parallelises or not. (4) The serve
   path degrades with types: deadlines expire into
   [Deadline_exceeded], a full queue refuses with [Overloaded], a
   raising arbiter poisons only its own request, and the client's
   retry backoff is a pure function of (seed, attempt). *)

open Lph_core

let with_env name value f =
  let saved = Sys.getenv_opt name in
  Unix.putenv name value;
  Fun.protect ~finally:(fun () -> Unix.putenv name (Option.value saved ~default:"")) f

let quick name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Byzantine soundness across all four engines (qcheck over seeds)     *)

let byzantine_models =
  [ Fault_model.make ~f:1 Fault_model.Byzantine_corrupt;
    Fault_model.make ~f:1 Fault_model.Byzantine_forge;
    Fault_model.make ~f:2 Fault_model.Byzantine_corrupt ]

let soundness_violations seed =
  List.concat_map
    (fun (fx : Fault_workloads.fixture) ->
      List.concat_map
        (fun model ->
          Fault_search.cert_soundness ~model ~seeds:[ seed ] fx.Fault_workloads.f_arbiter
            fx.Fault_workloads.f_graph ~ids:fx.Fault_workloads.f_ids
            ~universes:fx.Fault_workloads.f_universes)
        byzantine_models)
    (Fault_workloads.soundness_fixtures ())

let qcheck_soundness =
  QCheck.Test.make ~count:12
    ~name:"no in-budget Byzantine plan flips reject to accept (all engines)"
    QCheck.small_nat
    (fun seed ->
      match soundness_violations seed with
      | [] -> true
      | v :: _ -> QCheck.Test.fail_reportf "soundness violation under seed %d: %s" seed v)

(* ------------------------------------------------------------------ *)
(* crash-stop quorum semantics                                         *)

let two_col_workload () =
  List.find
    (fun (w : Fault_search.workload) -> w.Fault_search.w_name = "2col-game")
    (Fault_workloads.shipped ())

let crash_plan ~n ~f events =
  Fault_model.schedule (Fault_model.make ~f Fault_model.Crash_stop) ~n ~seed:1 events

let test_quorum_degraded () =
  let w = two_col_workload () in
  let algo = Option.get w.Fault_search.w_algo in
  let cert_list = w.Fault_search.w_cert_list in
  let g = w.Fault_search.w_graph and ids = w.Fault_search.w_ids in
  let n = Graph.card g in
  let plan = crash_plan ~n ~f:1 [ (Fault_plan.Crash, 1, 0) ] in
  match Runner.run_outcome ~faults:plan ~quorum:1 algo g ~ids ?cert_list () with
  | Runner.Degraded d ->
      check_int "one node crashed" 1 (List.length d.Runner.crashed);
      check_bool "node 0 crashed" true (List.mem 0 d.Runner.crashed);
      check_int "survivors counted" (n - 1) d.Runner.survivors;
      (* the report's promise, re-checked from outside: every survivor
         label equals the fault-free run's *)
      let free = Runner.run algo g ~ids ?cert_list () in
      List.iter
        (fun u ->
          if not (List.mem u d.Runner.crashed) then
            Alcotest.(check string)
              (Printf.sprintf "survivor %d label" u)
              (Graph.label free.Runner.output u)
              (Graph.label d.Runner.deg_result.Runner.output u))
        (Graph.nodes g)
  | Runner.Completed _ -> Alcotest.fail "scheduled crash did not fire"
  | Runner.Faulted _ -> Alcotest.fail "in-quorum crash with matching survivors must degrade"

let test_quorum_refusals () =
  let w = two_col_workload () in
  let algo = Option.get w.Fault_search.w_algo in
  let cert_list = w.Fault_search.w_cert_list in
  let g = w.Fault_search.w_graph and ids = w.Fault_search.w_ids in
  let n = Graph.card g in
  (* no quorum opt-in: the same crash is a plain fault *)
  let plan = crash_plan ~n ~f:1 [ (Fault_plan.Crash, 1, 0) ] in
  (match Runner.run_outcome ~faults:plan algo g ~ids ?cert_list () with
  | Runner.Faulted _ -> ()
  | Runner.Degraded _ -> Alcotest.fail "degradation without a quorum opt-in"
  | Runner.Completed _ -> Alcotest.fail "scheduled crash did not fire");
  (* a quorum of 0 never absorbs a crash *)
  (match Runner.run_outcome ~faults:plan ~quorum:0 algo g ~ids ?cert_list () with
  | Runner.Faulted _ -> ()
  | _ -> Alcotest.fail "quorum 0 must not absorb a crash");
  (* a non-crash fault is outside the degradation contract entirely *)
  let byz =
    Fault_model.schedule
      (Fault_model.make ~f:1 Fault_model.Byzantine_corrupt)
      ~n ~seed:1
      [ (Fault_plan.Cert_flip, -1, 0) ]
  in
  match Runner.run_outcome ~faults:byz ~quorum:1 algo g ~ids ?cert_list () with
  | Runner.Degraded _ -> Alcotest.fail "a Byzantine fault must never be absorbed as Degraded"
  | Runner.Faulted _ | Runner.Completed _ -> ()

let qcheck_quorum_invariant =
  QCheck.Test.make ~count:20
    ~name:"Degraded implies crash-only faults within quorum and matching survivors"
    QCheck.(pair (int_range 0 3) (int_range 1 3))
    (fun (node, round) ->
      let w = two_col_workload () in
      let algo = Option.get w.Fault_search.w_algo in
      let cert_list = w.Fault_search.w_cert_list in
      let g = w.Fault_search.w_graph and ids = w.Fault_search.w_ids in
      let n = Graph.card g in
      let plan = crash_plan ~n ~f:1 [ (Fault_plan.Crash, round, node) ] in
      match Runner.run_outcome ~faults:plan ~quorum:1 algo g ~ids ?cert_list () with
      | Runner.Completed _ | Runner.Faulted _ -> true
      | Runner.Degraded d ->
          let free = Runner.run algo g ~ids ?cert_list () in
          List.length d.Runner.crashed <= 1
          && List.for_all
               (fun (f : Error.fault) -> f.Error.fault_kind = "crash")
               d.Runner.deg_faults
          && List.for_all
               (fun u ->
                 List.mem u d.Runner.crashed
                 || Graph.label free.Runner.output u
                    = Graph.label d.Runner.deg_result.Runner.output u)
               (Graph.nodes g))

(* ------------------------------------------------------------------ *)
(* fault-search determinism under LPH_JOBS 1 vs 4                      *)

let search_signature () =
  Fault_search.clear_cache ();
  let workloads =
    List.filter
      (fun (w : Fault_search.workload) ->
        List.mem w.Fault_search.w_name [ "2col-game"; "eulerian-reduction" ])
      (Fault_workloads.shipped ())
  in
  List.concat_map
    (fun w ->
      List.map
        (fun model ->
          let r = Fault_search.search ~seed:3 ~model w in
          ( r.Fault_search.r_workload,
            r.Fault_search.r_model,
            Fault_search.verdict_string r.Fault_search.r_verdict,
            r.Fault_search.r_flip_budget,
            r.Fault_search.r_events,
            r.Fault_search.r_spec,
            r.Fault_search.r_evals ))
        (Fault_workloads.models ~f:1))
    workloads

let test_search_determinism () =
  let seq = with_env "LPH_JOBS" "1" search_signature in
  let par = with_env "LPH_JOBS" "4" search_signature in
  check_bool "identical reports under LPH_JOBS 1 and 4" true (seq = par);
  (* and the memo returns the same value without re-searching *)
  let again = with_env "LPH_JOBS" "4" search_signature in
  check_bool "stable across a cache clear" true (par = again)

(* ------------------------------------------------------------------ *)
(* serve path: deadlines, queue cap, raising arbiter, client backoff   *)

let sigma = Serve_protocol.Accepts Game.Eve

let req ?(id = 1) ?(engine = `Pruned) ?(query = sigma) property graph =
  { Serve_protocol.id; engine; property; graph; query }

let submit_one ?deadline_ms sched r =
  let slot = ref None in
  let mutex = Mutex.create () in
  let cond = Condition.create () in
  Serve_scheduler.submit ?deadline_ms sched r ~reply:(fun resp ->
      Mutex.lock mutex;
      slot := Some resp;
      Condition.broadcast cond;
      Mutex.unlock mutex);
  Mutex.lock mutex;
  while !slot = None do
    Condition.wait cond mutex
  done;
  Mutex.unlock mutex;
  Option.get !slot

let test_deadline_expiry () =
  let sched = Serve_scheduler.create ~cache_mb:16 () in
  Fun.protect ~finally:(fun () -> Serve_scheduler.shutdown sched) @@ fun () ->
  let r = req (Serve_protocol.Coloring 2) (Serve_protocol.Cycle 4) in
  (* deadline 0 is expired at submission: deterministic *)
  (match (submit_one ~deadline_ms:0 sched r).Serve_protocol.outcome with
  | Result.Error (Error.Deadline_exceeded { deadline_ms = 0; _ }) -> ()
  | Result.Error e -> Alcotest.failf "expected Deadline_exceeded, got %s" (Error.to_string e)
  | Result.Ok _ -> Alcotest.fail "expired request must not be answered");
  (* a generous deadline answers normally *)
  (match (submit_one ~deadline_ms:60_000 sched r).Serve_protocol.outcome with
  | Result.Ok true -> ()
  | Result.Ok v -> Alcotest.failf "wrong verdict %b" v
  | Result.Error e -> Alcotest.failf "unexpected error: %s" (Error.to_string e));
  (* the ambient LPH_SERVE_TIMEOUT_MS is picked up per submission *)
  (match
     with_env "LPH_SERVE_TIMEOUT_MS" "0" (fun () ->
         (submit_one sched r).Serve_protocol.outcome)
   with
  | Result.Error (Error.Deadline_exceeded _) -> ()
  | _ -> Alcotest.fail "ambient timeout not applied");
  let s = Serve_scheduler.stats sched in
  check_int "expired requests counted" 2 s.Serve_scheduler.expired

let test_queue_cap_overload () =
  let sched = Serve_scheduler.create ~cache_mb:16 ~queue_cap:1 () in
  Fun.protect ~finally:(fun () -> Serve_scheduler.shutdown sched) @@ fun () ->
  let r id = req ~id (Serve_protocol.Coloring 2) (Serve_protocol.Cycle 4) in
  (* hold the dispatcher inside a batch by blocking its reply callback:
     while it is blocked nothing drains, so queue occupancy is exact *)
  let gate = Mutex.create () in
  let entered = Mutex.create () and entered_cond = Condition.create () in
  let in_batch = ref false in
  Mutex.lock gate;
  Serve_scheduler.submit sched (r 1) ~reply:(fun _ ->
      Mutex.lock entered;
      in_batch := true;
      Condition.broadcast entered_cond;
      Mutex.unlock entered;
      Mutex.lock gate;
      Mutex.unlock gate);
  Mutex.lock entered;
  while not !in_batch do
    Condition.wait entered_cond entered
  done;
  Mutex.unlock entered;
  (* queue is empty and the dispatcher is pinned: the next submission
     fills the cap, the one after is refused synchronously *)
  let queued = ref None in
  Serve_scheduler.submit sched (r 2) ~reply:(fun resp -> queued := Some resp);
  let refused = ref None in
  Serve_scheduler.submit sched (r 3) ~reply:(fun resp -> refused := Some resp);
  (match !refused with
  | Some { Serve_protocol.outcome = Result.Error (Error.Overloaded _); _ } -> ()
  | Some _ -> Alcotest.fail "over-cap submission must refuse with Overloaded"
  | None -> Alcotest.fail "over-cap refusal must be synchronous");
  check_bool "in-cap submission is not refused synchronously" true (!queued = None);
  Mutex.unlock gate;
  (* the queued request drains normally once the dispatcher resumes *)
  let rec wait_for_drain n =
    match !queued with
    | Some _ -> ()
    | None when n = 0 -> Alcotest.fail "queued request never answered"
    | None ->
        Thread.delay 0.02;
        wait_for_drain (n - 1)
  in
  wait_for_drain 250;
  (match !queued with
  | Some { Serve_protocol.outcome = Result.Ok true; _ } -> ()
  | _ -> Alcotest.fail "queued request must still be answered correctly");
  let s = Serve_scheduler.stats sched in
  check_int "overloads counted" 1 s.Serve_scheduler.overloads

let test_raising_arbiter_isolated () =
  let sched = Serve_scheduler.create ~cache_mb:16 () in
  Fun.protect ~finally:(fun () -> Serve_scheduler.shutdown sched) @@ fun () ->
  let bad = req ~id:7 Serve_protocol.Raising_probe (Serve_protocol.Cycle 4) in
  let good = req ~id:8 (Serve_protocol.Coloring 2) (Serve_protocol.Cycle 4) in
  let slots = Array.make 2 None in
  let mutex = Mutex.create () and cond = Condition.create () in
  let remaining = ref 2 in
  List.iteri
    (fun i r ->
      Serve_scheduler.submit sched r ~reply:(fun resp ->
          Mutex.lock mutex;
          slots.(i) <- Some resp;
          decr remaining;
          if !remaining = 0 then Condition.broadcast cond;
          Mutex.unlock mutex))
    [ bad; good ];
  Mutex.lock mutex;
  while !remaining > 0 do
    Condition.wait cond mutex
  done;
  Mutex.unlock mutex;
  (* the raising arbiter's request gets a typed error... *)
  (match Option.get slots.(0) with
  | { Serve_protocol.id = 7; outcome = Result.Error (Error.Protocol_error _); _ } -> ()
  | { Serve_protocol.outcome = Result.Error e; _ } ->
      Alcotest.failf "expected Protocol_error, got %s" (Error.to_string e)
  | _ -> Alcotest.fail "raising arbiter must produce a typed error response");
  (* ...the innocent bystander in the same batch is answered... *)
  (match Option.get slots.(1) with
  | { Serve_protocol.id = 8; outcome = Result.Ok true; _ } -> ()
  | _ -> Alcotest.fail "the other request of the batch must be answered correctly");
  (* ...and the dispatcher survives to serve another round *)
  match (submit_one sched good).Serve_protocol.outcome with
  | Result.Ok true -> ()
  | _ -> Alcotest.fail "scheduler must keep dispatching after a raising group"

let test_backoff_deterministic () =
  (* pure in (seed, attempt): equal inputs, equal delays *)
  for attempt = 0 to 12 do
    check_int
      (Printf.sprintf "attempt %d replays" attempt)
      (Serve_client.backoff_ms ~seed:42 attempt)
      (Serve_client.backoff_ms ~seed:42 attempt)
  done;
  (* envelope: raw exponential stretched by at most 50% jitter *)
  List.iter
    (fun attempt ->
      let raw = min 1000 (5 * (1 lsl attempt)) in
      let d = Serve_client.backoff_ms ~seed:9 attempt in
      check_bool
        (Printf.sprintf "attempt %d in [raw, 1.5*raw]" attempt)
        true
        (d >= raw && d <= (raw * 3 / 2) + 1))
    [ 0; 1; 2; 3; 5; 8 ];
  (* the cap holds arbitrarily deep, including past shift overflow *)
  List.iter
    (fun attempt ->
      check_bool "capped" true (Serve_client.backoff_ms ~seed:1 attempt <= 1501))
    [ 10; 30; 62; 1000 ];
  (* seeds decorrelate: not every delay can coincide across seeds *)
  let schedule seed = List.init 8 (fun attempt -> Serve_client.backoff_ms ~seed attempt) in
  check_bool "different seeds give different schedules" true (schedule 1 <> schedule 2);
  (* misconfiguration is loud *)
  check_bool "zero base refused" true
    (match Serve_client.backoff_ms ~base_ms:0 ~seed:1 0 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "cap below base refused" true
    (match Serve_client.backoff_ms ~base_ms:10 ~cap_ms:5 ~seed:1 0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_connect_retry_exhaustion () =
  let missing =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "lph-faultlab-nosock-%d.sock" (Unix.getpid ()))
  in
  let t0 = Unix.gettimeofday () in
  (match Serve_client.connect ~retries:2 ~seed:5 ~socket:missing () with
  | _ -> Alcotest.fail "connect to a missing socket must raise"
  | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) -> ());
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  (* two backoff sleeps happened: at least the unjittered raw delays *)
  check_bool "retries actually backed off" true (elapsed_ms >= 10.)

let test_idle_reaper () =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "lph-faultlab-idle-%d.sock" (Unix.getpid ()))
  in
  let server = Serve_server.start ~cache_mb:16 ~idle_ms:60 ~socket () in
  Fun.protect ~finally:(fun () -> Serve_server.stop server) @@ fun () ->
  let client = Serve_client.connect ~wire:Codec.Packed ~socket () in
  Fun.protect ~finally:(fun () -> Serve_client.close client) @@ fun () ->
  (* an active connection answers... *)
  let r = req (Serve_protocol.Coloring 2) (Serve_protocol.Cycle 4) in
  (match (Serve_client.request client r).Serve_protocol.outcome with
  | Result.Ok true -> ()
  | _ -> Alcotest.fail "live connection must answer");
  (* ...then goes idle past the bound and is reaped: the next read sees
     a clean EOF, surfaced as the client's typed protocol error *)
  Thread.delay 0.4;
  match Serve_client.recv client with
  | _ -> Alcotest.fail "idle connection was not reaped"
  | exception Error.Error (Error.Protocol_error _) -> ()
  | exception Unix.Unix_error _ -> () (* reset surfaced at the socket layer: also torn down *)

let suites =
  [
    ( "faultlab:soundness",
      [ QCheck_alcotest.to_alcotest ~long:false qcheck_soundness ] );
    ( "faultlab:quorum",
      [
        quick "in-quorum crash with matching survivors degrades" test_quorum_degraded;
        quick "refusals: no opt-in, zero quorum, Byzantine faults" test_quorum_refusals;
        QCheck_alcotest.to_alcotest ~long:false qcheck_quorum_invariant;
      ] );
    ( "faultlab:search",
      [ slow "reports identical under LPH_JOBS 1 and 4" test_search_determinism ] );
    ( "faultlab:serve",
      [
        quick "deadline 0 expires, generous deadline answers" test_deadline_expiry;
        quick "queue cap refuses with Overloaded, then drains" test_queue_cap_overload;
        quick "raising arbiter poisons only its own request" test_raising_arbiter_isolated;
        quick "backoff is pure, enveloped and capped" test_backoff_deterministic;
        quick "connect retries then raises on a missing socket" test_connect_retry_exhaustion;
        quick "idle connections are reaped into clean EOF" test_idle_reaper;
      ] );
  ]
