open Lph_core
open Helpers

let properties_tests =
  [
    quick "all_selected / not_all_selected" (fun () ->
        check_bool "yes" true (Properties.all_selected (Generators.cycle 3));
        let bad = Graph.with_labels (Generators.cycle 3) [| "1"; "1"; "" |] in
        check_bool "no" false (Properties.all_selected bad);
        check_bool "complement" true (Properties.not_all_selected bad));
    quick "eulerian" (fun () ->
        check_bool "C4" true (Properties.eulerian (Generators.cycle 4));
        check_bool "K5" true (Properties.eulerian (Generators.complete 5));
        check_bool "K4" false (Properties.eulerian (Generators.complete 4));
        check_bool "P3" false (Properties.eulerian (Generators.path 3));
        check_bool "K1" true (Properties.eulerian (Graph.singleton "")));
    quick "hamiltonian" (fun () ->
        check_bool "C5" true (Properties.hamiltonian (Generators.cycle 5));
        check_bool "K4" true (Properties.hamiltonian (Generators.complete 4));
        check_bool "P4" false (Properties.hamiltonian (Generators.path 4));
        check_bool "star" false (Properties.hamiltonian (Generators.star 5));
        check_bool "K1" false (Properties.hamiltonian (Graph.singleton ""));
        check_bool "K2" false (Properties.hamiltonian (Generators.path 2));
        check_bool "grid 2x3" true (Properties.hamiltonian (Generators.grid ~rows:2 ~cols:3 ())));
    quick "hamiltonian witness is a cycle" (fun () ->
        match Properties.find_hamiltonian_cycle (Generators.grid ~rows:2 ~cols:4 ()) with
        | None -> Alcotest.fail "expected a cycle"
        | Some cycle ->
            let g = Generators.grid ~rows:2 ~cols:4 () in
            check_int "length" (Graph.card g) (List.length cycle);
            let rec consecutive = function
              | a :: (b :: _ as rest) -> Graph.has_edge g a b && consecutive rest
              | _ -> true
            in
            check_bool "edges" true (consecutive cycle);
            check_bool "closes" true
              (Graph.has_edge g (List.nth cycle (List.length cycle - 1)) (List.hd cycle)));
    quick "colorability" (fun () ->
        check_bool "C5 not 2col" false (Properties.two_colorable (Generators.cycle 5));
        check_bool "C6 2col" true (Properties.two_colorable (Generators.cycle 6));
        check_bool "K4 not 3col" false (Properties.three_colorable (Generators.complete 4));
        check_bool "K4 4col" true (Properties.k_colorable 4 (Generators.complete 4));
        check_bool "1col edgeless" true (Properties.k_colorable 1 (Graph.singleton "")));
    quick "coloring witness is proper" (fun () ->
        let g = Generators.grid ~rows:3 ~cols:3 () in
        match Properties.find_k_coloring 2 g with
        | None -> Alcotest.fail "grid is bipartite"
        | Some colors ->
            check_bool "proper" true
              (List.for_all (fun (u, v) -> colors.(u) <> colors.(v)) (Graph.edges g)));
    qcheck ~count:50 "two_colorable ≡ k_colorable 2" (arb_graph ~max_nodes:7 ()) (fun g ->
        Properties.two_colorable g = Properties.k_colorable 2 g);
    qcheck ~count:50 "k-colourability is monotone" (arb_graph ~max_nodes:6 ()) (fun g ->
        (not (Properties.two_colorable g)) || Properties.three_colorable g);
    qcheck ~count:30 "isomorphism invariance of eulerian/hamiltonian"
      (arb_graph ~max_nodes:6 ())
      (fun g ->
        (* relabel node indices by a rotation *)
        let n = Graph.card g in
        let perm u = (u + 1) mod n in
        let h =
          Graph.make
            ~labels:(Array.init n (fun u -> Graph.label g ((u + n - 1) mod n)))
            ~edges:(List.map (fun (u, v) -> (perm u, perm v)) (Graph.edges g))
        in
        Properties.eulerian g = Properties.eulerian h
        && Properties.hamiltonian g = Properties.hamiltonian h);
  ]

let game_tests =
  [
    quick "solve degenerate level 0" (fun () ->
        check_bool "arbiter value" true
          (Game.solve ~first:Game.Eve ~n:3 ~universes:[] ~arbiter:(fun certs -> certs = [])));
    quick "one-level game over tiny universes" (fun () ->
        (* Eve must label every node with "1" *)
        let universe = Game.of_choices [ "0"; "1" ] in
        let arbiter = function
          | [ k ] -> Array.for_all (fun c -> c = "1") k
          | _ -> false
        in
        check_bool "exists" true (Game.solve ~first:Game.Eve ~n:3 ~universes:[ universe ] ~arbiter);
        check_bool "not forall" false
          (Game.solve ~first:Game.Adam ~n:3 ~universes:[ universe ] ~arbiter));
    quick "two-level alternation" (fun () ->
        (* Eve then Adam on one node; Eve wins iff she can pick k1 such
           that every k2 keeps the arbiter happy: arbiter = (k1 = "1") *)
        let universe = Game.of_choices [ "0"; "1" ] in
        let arbiter = function
          | [ k1; _ ] -> k1.(0) = "1"
          | _ -> false
        in
        check_bool "sigma2" true
          (Game.solve ~first:Game.Eve ~n:1 ~universes:[ universe; universe ] ~arbiter);
        (* arbiter = (k2 = "1") : Adam refutes *)
        let arbiter2 = function
          | [ _; k2 ] -> k2.(0) = "1"
          | _ -> false
        in
        check_bool "sigma2 lost" false
          (Game.solve ~first:Game.Eve ~n:1 ~universes:[ universe; universe ] ~arbiter:arbiter2);
        check_bool "pi2 won" true
          (Game.solve ~first:Game.Adam ~n:1 ~universes:[ universe; universe ]
             ~arbiter:(fun certs -> match certs with [ _; k2 ] -> k2.(0) = "1" | _ -> false)));
    quick "bounded universe respects (r,p)" (fun () ->
        let g = Generators.path 2 in
        let ids = global_ids g in
        let bound = { Certificates.radius = 1; poly = Poly.const 2 } in
        let u = Game.bounded_universe g ~ids bound ~cap:10 in
        check_int "lengths <= 2" 7 (List.length (u 0)));
    quick "eve_witness finds the colouring" (fun () ->
        let verifier = Arbiter.of_local_algo ~id_radius:2 (Candidates.color_verifier 2) in
        let g = Generators.path 3 in
        match
          Game.eve_witness verifier g ~ids:(global_ids g) ~universes:[ Candidates.color_universe 2 ]
        with
        | None -> Alcotest.fail "P3 is 2-colourable"
        | Some k ->
            check_bool "alternating" true (k.(0) <> k.(1) && k.(1) <> k.(2)));
  ]

let verifier_tests =
  let game_3col g =
    let v = Arbiter.of_local_algo ~id_radius:2 (Candidates.color_verifier 3) in
    Game.sigma_accepts v g ~ids:(global_ids g) ~universes:[ Candidates.color_universe 3 ]
  in
  [
    quick "3col verification game matches ground truth" (fun () ->
        List.iter
          (fun g -> check_bool (graph_print g) (Properties.three_colorable g) (game_3col g))
          [
            Generators.cycle 3;
            Generators.cycle 5;
            Generators.complete 4;
            Generators.path 4;
            Generators.star 4;
          ]);
    qcheck ~count:12 "3col game on random graphs" (arb_graph ~max_nodes:5 ()) (fun g ->
        game_3col g = Properties.three_colorable g);
    quick "exact counter: sound everywhere" (fun () ->
        (* on an all-selected cycle no certificate assignment is accepted *)
        let v = Arbiter.of_local_algo ~id_radius:2 (Candidates.exact_counter_verifier ~cap:3) in
        let g = Generators.cycle 6 in
        check_bool "rejects" false
          (Game.sigma_accepts v g ~ids:(global_ids g)
             ~universes:[ Candidates.counter_universe ~bound:4 ]));
    quick "exact counter: complete only below the cap" (fun () ->
        let yes n =
          Generators.cycle ~labels:(Array.init n (fun i -> if i = 0 then "0" else "1")) n
        in
        let game cap n =
          let v = Arbiter.of_local_algo ~id_radius:2 (Candidates.exact_counter_verifier ~cap) in
          let g = yes n in
          Game.sigma_accepts v g ~ids:(global_ids g)
            ~universes:[ Candidates.counter_universe ~bound:(cap + 1) ]
        in
        check_bool "C6 cap 3" true (game 3 6);
        check_bool "C8 cap 4" true (game 4 8);
        check_bool "C8 cap 2 fails" false (game 2 8));
    quick "LP deciders" (fun () ->
        let g = Generators.complete 5 in
        let ids = global_ids g in
        check_bool "eulerian decider" true (Runner.decides Candidates.eulerian_decider g ~ids ());
        check_bool "all-selected decider" true (Runner.decides Candidates.all_selected_decider g ~ids ());
        let c = Generators.cycle 4 in
        check_bool "constant label" true
          (Runner.decides Candidates.constant_label_decider c ~ids:(global_ids c) ());
        let mixed = Graph.with_labels c [| "1"; "0"; "1"; "1" |] in
        check_bool "mixed label" false
          (Runner.decides Candidates.constant_label_decider mixed ~ids:(global_ids mixed) ()));
  ]

let separation_tests =
  [
    quick "Prop 21: lift indistinguishability for several deciders" (fun () ->
        List.iter
          (fun (name, decider) ->
            List.iter
              (fun n ->
                let out = Separations.prop21 ~decider ~n ~id_period:n in
                check_bool (Printf.sprintf "%s n=%d" name n) true out.Separations.indistinguishable)
              [ 5; 9 ])
          [
            ("local-2col-r1", Candidates.local_two_col_decider ~radius:1);
            ("local-2col-r2", Candidates.local_two_col_decider ~radius:2);
            ("eulerian", Candidates.eulerian_decider);
            ("constant-label", Candidates.constant_label_decider);
          ]);
    quick "Prop 21: the 2COL candidate is fooled" (fun () ->
        let out =
          Separations.prop21 ~decider:(Candidates.local_two_col_decider ~radius:2) ~n:15 ~id_period:15
        in
        check_bool "accepts the odd cycle" true
          (Array.for_all (fun v -> v = "1") out.Separations.verdicts_odd);
        check_bool "odd cycle is not 2-colourable" false
          (Properties.two_colorable out.Separations.odd_cycle);
        check_bool "glued cycle is 2-colourable" true
          (Properties.two_colorable out.Separations.glued));
    quick "Prop 21: the game side separates" (fun () ->
        let truth_odd, game_odd, truth_glued, game_glued = Separations.two_col_game_separation ~n:5 () in
        check_bool "odd truth" false truth_odd;
        check_bool "odd game" false game_odd;
        check_bool "glued truth" true truth_glued;
        check_bool "glued game" true game_glued);
    quick "Prop 21: every engine separates, also under the sweep" (fun () ->
        List.iter
          (fun engine ->
            check_bool "separation quadruple" true
              (Separations.two_col_game_separation ~engine ~n:5 () = (false, false, true, true)))
          [ `Exhaustive; `Pruned; `Sat ];
        check_bool "sat sweep agrees with pruned sweep" true
          (Separations.two_col_game_sweep ~engine:`Sat [ 3; 5; 7 ]
          = Separations.two_col_game_sweep ~engine:`Pruned [ 3; 5; 7 ]));
    quick "Prop 23: pigeonhole splice" (fun () ->
        List.iter
          (fun (period, id_period, n) ->
            let o = Separations.prop23 ~period ~id_period ~n in
            let tag = Printf.sprintf "M=%d p=%d n=%d" period id_period n in
            check_bool (tag ^ " honest accepted") true o.Separations.yes_accepted;
            check_bool (tag ^ " spliced accepted") true o.Separations.spliced_accepted;
            check_bool (tag ^ " verdicts preserved") true o.Separations.verdicts_preserved;
            check_bool (tag ^ " spliced is all-selected") true
              (Properties.all_selected o.Separations.spliced))
          [ (3, 5, 30); (2, 5, 20); (5, 6, 60) ]);
    quick "Prop 23: the mod verifier is sound on short all-1 cycles" (fun () ->
        (* unsoundness needs length divisible by the period *)
        let v = Arbiter.of_local_algo ~id_radius:2 (Candidates.mod_counter_verifier ~period:3) in
        let g = Generators.cycle 4 in
        check_bool "rejects C4" false
          (Game.sigma_accepts v g ~ids:(global_ids g)
             ~universes:[ Candidates.counter_universe ~bound:3 ]);
        let g6 = Generators.cycle 6 in
        check_bool "accepts C6 (unsound!)" true
          (Game.sigma_accepts v g6 ~ids:(global_ids g6)
             ~universes:[ Candidates.counter_universe ~bound:3 ]));
  ]

let suites =
  [
    ("hierarchy:properties", properties_tests);
    ("hierarchy:game", game_tests);
    ("hierarchy:verifiers", verifier_tests);
    ("hierarchy:separations", separation_tests);
  ]

(* LCL problems as decision problems: the LCL ⊆ LP inclusion (§1.3) *)
let lcl_tests =
  let mis = Lcl.maximal_independent_set ~delta:4 in
  let run t g = Runner.decides (Lcl.decider t) g ~ids:(global_ids g) () in
  [
    quick "maximal independent set: accepting and rejecting labellings" (fun () ->
        let c4 = Generators.cycle 4 in
        let good = Graph.with_labels c4 [| "1"; "0"; "1"; "0" |] in
        check_bool "valid MIS" true (Lcl.holds mis good);
        check_bool "decider agrees" true (run mis good);
        let not_maximal = Graph.with_labels c4 [| "1"; "0"; "0"; "0" |] in
        check_bool "not maximal" false (Lcl.holds mis not_maximal);
        check_bool "decider rejects" false (run mis not_maximal);
        let not_independent = Graph.with_labels c4 [| "1"; "1"; "0"; "0" |] in
        check_bool "not independent" false (Lcl.holds mis not_independent);
        check_bool "decider rejects 2" false (run mis not_independent));
    quick "domain bounds are enforced" (fun () ->
        let star = Generators.star 7 in
        let labelled = Graph.with_labels star (Array.init 7 (fun u -> if u = 0 then "1" else "0")) in
        (* degree 6 > delta 4: outside the domain *)
        check_bool "outside domain" false (Lcl.holds mis labelled);
        check_bool "decider rejects" false (run mis labelled);
        check_bool "in_domain false" false (Lcl.in_domain mis labelled));
    quick "proper colouring LCL" (fun () ->
        let col = Lcl.proper_coloring ~delta:4 ~colors:3 in
        let c5 = Generators.cycle 5 in
        let good = Graph.with_labels c5 [| "00"; "01"; "00"; "01"; "10" |] in
        check_bool "proper" true (Lcl.holds col good);
        check_bool "decider" true (run col good);
        let clash = Graph.with_labels c5 [| "00"; "00"; "01"; "00"; "01" |] in
        check_bool "clash" false (Lcl.holds col clash);
        check_bool "decider rejects" false (run col clash));
    quick "independent set without maximality" (fun () ->
        let ind = Lcl.at_most_one_selected_locally ~delta:4 in
        let c4 = Generators.cycle 4 in
        check_bool "sparse ok" true (Lcl.holds ind (Graph.with_labels c4 [| "1"; "0"; "0"; "0" |]));
        check_bool "empty ok" true (Lcl.holds ind (Graph.with_labels c4 [| "0"; "0"; "0"; "0" |]));
        check_bool "adjacent bad" false (Lcl.holds ind (Graph.with_labels c4 [| "1"; "1"; "0"; "0" |])));
    qcheck ~count:40 "MIS decider ≡ ground truth on random labelled graphs"
      (arb_graph ~max_nodes:6 ~label_bits:1 ())
      (fun g -> run mis g = Lcl.holds mis g);
    quick "LCL deciders run in constant rounds and linear charge" (fun () ->
        let rounds =
          List.map
            (fun n ->
              let g = Generators.cycle ~labels:(Array.init n (fun i -> if i mod 2 = 0 then "1" else "0")) n in
              (Runner.run (Lcl.decider mis) g ~ids:(global_ids g) ()).Runner.stats.Runner.rounds)
            [ 4; 8; 16 ]
        in
        check_bool "constant" true (Step_time.check_rounds ~limit:3 ~rounds));
  ]

let suites = suites @ [ ("hierarchy:lcl", lcl_tests) ]

(* The paper's definitional requirement: membership must be independent
   of the identifier assignment (only individual verdicts may vary). *)
let id_independence_tests =
  let game_value ids g =
    let v = Arbiter.of_local_algo ~id_radius:2 (Candidates.color_verifier 3) in
    Game.sigma_accepts v g ~ids ~universes:[ Candidates.color_universe 3 ]
  in
  [
    quick "3col game value is identifier-independent" (fun () ->
        List.iter
          (fun g ->
            let global = game_value (Identifiers.make_global g) g in
            let small = game_value (Identifiers.make_small g ~radius:2) g in
            let reversed =
              let n = Graph.card g in
              game_value (Array.init n (fun u -> (Identifiers.make_global g).(n - 1 - u))) g
            in
            check_bool (graph_print g) true (global = small && small = reversed))
          [ Generators.cycle 4; Generators.cycle 5; Generators.path 3; Generators.complete 4 ]);
    quick "decider outcome is identifier-independent" (fun () ->
        List.iter
          (fun g ->
            let run ids = Runner.decides Candidates.constant_label_decider g ~ids () in
            check_bool (graph_print g) (run (Identifiers.make_global g))
              (run (Identifiers.make_small g ~radius:2)))
          [
            Generators.cycle 5;
            Graph.with_labels (Generators.cycle 5) [| "1"; "1"; "0"; "1"; "1" |];
          ]);
    qcheck ~count:15 "eulerian TM verdict under three identifier regimes"
      (arb_graph ~max_nodes:6 ())
      (fun g ->
        let run ids = Turing.accepts (Turing.run Machines.eulerian g ~ids ()) in
        let n = Graph.card g in
        let global = Identifiers.make_global g in
        run global = run (Identifiers.make_small g ~radius:1)
        && run global = run (Array.init n (fun u -> global.(n - 1 - u))));
  ]

let suites = suites @ [ ("hierarchy:id-independence", id_independence_tests) ]
