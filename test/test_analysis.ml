(* The spec analyzer (lib/analysis): radius inference against every
   built-in arbiter's declaration, stratification and budget checks on
   the shipped sentences, codec cost accounting, diagnostic JSON
   round-trips, and the seeded violation fixtures. *)

open Lph_core
open Helpers
module D = Diagnostic
module Probe = Radius_probe
module R = Lint_registry

let registry = lazy (Lint_registry.builtin ())

let spec_samples (spec : R.arbiter_spec) =
  Probe.samples_for spec.R.arbiter ~universes:spec.R.universes spec.R.probes
  @ spec.R.extra_samples

let declared_radius (spec : R.arbiter_spec) =
  match spec.R.arbiter.Arbiter.locality with
  | Arbiter.Ball r -> Some r
  | Arbiter.Opaque -> None

(* ------------------------------------------------------------------ *)
(* radius inference vs declaration, per built-in arbiter *)

let radius_tests =
  let specs = (Lazy.force registry).R.arbiters in
  List.map
    (fun (spec : R.arbiter_spec) ->
      quick (Printf.sprintf "radius:%s" spec.R.a_name) (fun () ->
          let samples = spec_samples spec in
          match declared_radius spec with
          | None -> Alcotest.fail "built-in arbiter declares no radius"
          | Some declared -> (
              match spec.R.expectation with
              | R.Probed ->
                  (* inferred radius must equal the declaration exactly:
                     less is unsound, more is a lie about locality *)
                  let outcome = Probe.infer ~max_radius:spec.R.max_radius spec.R.arbiter samples in
                  Alcotest.(check (option int))
                    "inferred = declared" (Some declared) outcome.Probe.inferred
              | R.Static expected ->
                  check_int "declared = quantifier bound" expected declared;
                  (match Probe.consistent_at ~radius:declared spec.R.arbiter samples with
                  | None -> ()
                  | Some v ->
                      Alcotest.fail
                        (Printf.sprintf "declared radius unsound at node %d: %s" v.Probe.node
                           v.Probe.detail)))))
    specs

(* ------------------------------------------------------------------ *)
(* the full lint run: clean on the registry, firing on the fixtures *)

let lint_tests =
  [
    quick "registry is clean" (fun () ->
        let report = Lint.run (Lazy.force registry) in
        List.iter
          (fun (d : D.t) -> Alcotest.fail (Format.asprintf "%a" D.pp d))
          report.Lint.diagnostics);
    quick "fixtures trip their rules" (fun () ->
        let report = Lint.run (Lint_fixtures.violations ()) in
        check_bool "has errors" true (Lint.has_errors report);
        List.iter
          (fun (name, rule, severity) ->
            let hit =
              List.exists
                (fun (d : D.t) -> d.D.spec = name && d.D.rule = rule && d.D.severity = severity)
                report.Lint.diagnostics
            in
            check_bool
              (Printf.sprintf "%s trips %s at %s" name (D.rule_id rule)
                 (D.severity_to_string severity))
              true hit)
          Lint_fixtures.expectations);
    quick "fixture errors name only fixture rules" (fun () ->
        (* no fixture may fail for an unplanned reason: every
           error-severity finding is one of the expected (spec, rule)
           pairs *)
        let report = Lint.run (Lint_fixtures.violations ()) in
        List.iter
          (fun (d : D.t) ->
            check_bool
              (Printf.sprintf "%s/%s expected" d.D.spec (D.rule_id d.D.rule))
              true
              (List.exists
                 (fun (name, rule, severity) ->
                   d.D.spec = name && d.D.rule = rule && d.D.severity = severity)
                 Lint_fixtures.expectations))
          (Lint.errors report));
    quick "broken codec caught" (fun () ->
        let broken =
          R.Codec_spec
            {
              c_name = "broken";
              (* decode is not the inverse of encode: the round-trip
                 check must flag it *)
              codec = Codec.map (fun _ -> 0) (fun _ -> 1) Codec.int;
              values = [ 5 ];
            }
        in
        let diags = Lint.analyze_codec broken in
        check_bool "cost-accounting error" true
          (List.exists (fun (d : D.t) -> d.D.rule = D.Cost_accounting && D.is_error d) diags));
    quick "absurd message bound caught" (fun () ->
        let spec =
          R.of_algo Candidates.constant_label_decider
            ~msg_bound:(Poly.const 0)
            ~probes:[ Generators.cycle 4 ]
        in
        let diags = Lint.analyze_arbiter spec in
        check_bool "message-size error" true
          (List.exists (fun (d : D.t) -> d.D.rule = D.Message_size && D.is_error d) diags));
  ]

(* ------------------------------------------------------------------ *)
(* stratification on the shipped sentences *)

let stratification_tests =
  [
    quick "claimed levels are exact" (fun () ->
        List.iter
          (fun (spec : R.formula_spec) ->
            let diags = Lint.analyze_formula spec in
            List.iter (fun (d : D.t) -> Alcotest.fail (Format.asprintf "%a" D.pp d)) diags)
          (Lazy.force registry).R.formulas);
    quick "wrong polarity flagged" (fun () ->
        let spec =
          {
            R.f_name = "2col-as-pi";
            formula = Graph_formulas.two_colorable;
            claimed_level = 1;
            claimed_polarity = R.Pi;
            budget_probes = [];
          }
        in
        let diags = Lint.analyze_formula spec in
        check_bool "stratification error" true
          (List.exists (fun (d : D.t) -> d.D.rule = D.Stratification && D.is_error d) diags));
    quick "loose level is a warning" (fun () ->
        let spec =
          {
            R.f_name = "2col-as-sigma3";
            formula = Graph_formulas.two_colorable;
            claimed_level = 3;
            claimed_polarity = R.Sigma;
            budget_probes = [];
          }
        in
        let diags = Lint.analyze_formula spec in
        check_bool "loose-level warning" true
          (List.exists
             (fun (d : D.t) -> d.D.rule = D.Stratification && d.D.severity = D.Warning)
             diags));
  ]

(* ------------------------------------------------------------------ *)
(* JSON: diagnostics round-trip, parser rejects garbage *)

let arb_diagnostic =
  let rules =
    [
      D.Radius_declared;
      D.Radius_sound;
      D.Radius_tight;
      D.Radius_expected;
      D.Stratification;
      D.Bounded_quantifiers;
      D.Certificate_budget;
      D.Message_size;
      D.Cost_accounting;
      D.Cluster_radius;
      D.Output_poly;
      D.Budget_slack;
      D.Reduction_consistency;
      D.Lower_bound_replay;
    ]
  in
  QCheck.make
    ~print:(fun (d : D.t) -> Format.asprintf "%a" D.pp d)
    QCheck.Gen.(
      let* rule = oneofl rules in
      let* severity = oneofl [ D.Error; D.Warning; D.Info ] in
      let* spec = string_printable in
      let* message = string_printable in
      return (D.make ~spec ~rule ~severity message))

let json_tests =
  [
    qcheck "diagnostic JSON round-trip" arb_diagnostic (fun d ->
        D.of_json (Json.of_string (Json.to_string (D.to_json d))) = d);
    quick "escapes survive" (fun () ->
        let d =
          D.make ~spec:"sp\"ec\\with\nnewline\tand\x01control" ~rule:D.Cost_accounting
            ~severity:D.Error "m\"essage\x1f"
        in
        check_bool "round-trip" true (D.of_json (Json.of_string (Json.to_string (D.to_json d))) = d));
    quick "report JSON parses" (fun () ->
        let report = Lint.run (Lint_fixtures.violations ()) in
        let json = Json.of_string (Json.pretty (Lint.report_to_json report)) in
        (match Json.member "schema" json with
        | Some (Json.String s) -> check_string "schema" "lph-lint-2" s
        | _ -> Alcotest.fail "missing schema");
        match Json.member "diagnostics" json with
        | Some (Json.List l) ->
            check_int "diagnostic count" (List.length report.Lint.diagnostics) (List.length l);
            ignore (List.map D.of_json l)
        | _ -> Alcotest.fail "missing diagnostics");
    quick "parser rejects garbage" (fun () ->
        List.iter
          (fun s ->
            match Json.of_string s with
            | _ -> Alcotest.fail (Printf.sprintf "parsed %S" s)
            | exception Error.Error (Error.Decode_error _) -> ())
          [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "\"unterminated"; "{\"a\":1 \"b\":2}"; "1 2" ]);
    quick "unknown rule rejected" (fun () ->
        let j =
          Json.Obj
            [
              ("spec", Json.String "x");
              ("rule", Json.String "arbiter/not-a-rule");
              ("severity", Json.String "error");
              ("message", Json.String "m");
            ]
        in
        match D.of_json j with
        | _ -> Alcotest.fail "accepted unknown rule"
        | exception Error.Error (Error.Decode_error _) -> ());
  ]

(* ------------------------------------------------------------------ *)
(* qcheck cross-validation: at the true radius, no random graph (and
   none of the probe harness's outside-ball perturbations) flips a
   verdict *)

let stability_tests =
  let stable name packed radius =
    qcheck ~count:40 name
      (arb_graph ~max_nodes:6 ())
      (fun g ->
        let arbiter = Arbiter.of_local_algo ~id_radius:(radius + 2) packed in
        let samples = Probe.samples_for arbiter ~universes:None [ g ] in
        Probe.consistent_at ~radius arbiter samples = None)
  in
  [
    stable "constant-label stable at 1" Candidates.constant_label_decider 1;
    stable "eulerian stable at 0" Candidates.eulerian_decider 0;
    stable "2col-r1 stable at 1" (Candidates.local_two_col_decider ~radius:1) 1;
    qcheck ~count:40 "under-declaration never hides on cycles"
      QCheck.(int_range 4 8)
      (fun n ->
        (* a radius-1 machine claiming radius 0 must be caught on every
           uniform cycle — the seeded fixture's property, at all sizes *)
        let arbiter =
          Arbiter.of_local_algo ~id_radius:2
            (Local_algo.with_radius (Some 0) Candidates.constant_label_decider)
        in
        let samples = Probe.samples_for arbiter ~universes:None [ Generators.cycle n ] in
        Probe.consistent_at ~radius:0 arbiter samples <> None);
  ]

let suites =
  [
    ("analysis:radius", radius_tests);
    ("analysis:lint", lint_tests);
    ("analysis:stratification", stratification_tests);
    ("analysis:json", json_tests);
    ("analysis:stability", stability_tests);
  ]
