open Lph_core
open Helpers
module BF = Bool_formula

let cluster_tests =
  [
    quick "codec roundtrip" (fun () ->
        let c =
          {
            Cluster.nodes = [ ("a", "01"); ("b", "") ];
            internal_edges = [ ("a", "b") ];
            boundary_edges = [ ("a", "10", "x") ];
          }
        in
        check_bool "roundtrip" true (Codec.decode Cluster.codec (Codec.encode Cluster.codec c) = c));
    quick "assemble a simple doubling" (fun () ->
        let g = Generators.path 2 in
        let ids = global_ids g in
        let cluster other =
          {
            Cluster.nodes = [ ("0", "1") ];
            internal_edges = [];
            boundary_edges = [ ("0", other, "0") ];
          }
        in
        let assembled, owners = Cluster.assemble g ~ids [| cluster ids.(1); cluster ids.(0) |] in
        check_int "two nodes" 2 (Graph.card assembled);
        check_int "one edge" 1 (Graph.num_edges assembled);
        check_bool "owners" true (owners.(0) = (0, "0") && owners.(1) = (1, "0")));
    quick "assemble rejects one-sided boundary edges" (fun () ->
        let g = Generators.path 2 in
        let ids = global_ids g in
        let c0 =
          { Cluster.nodes = [ ("0", "") ]; internal_edges = []; boundary_edges = [ ("0", ids.(1), "0") ] }
        in
        let c1 = { Cluster.nodes = [ ("0", "") ]; internal_edges = []; boundary_edges = [] } in
        Alcotest.check_raises "one-sided"
          (Error.Error
             (Error.Protocol_error
                {
                  what = "Cluster.assemble";
                  detail = "inter-cluster edge declared by only one side";
                  round = None;
                  node = None;
                }))
          (fun () -> ignore (Cluster.assemble g ~ids [| c0; c1 |])));
    quick "assemble rejects edges to non-neighbours" (fun () ->
        let g = Generators.path 3 in
        let ids = global_ids g in
        let mk boundary = { Cluster.nodes = [ ("0", "") ]; internal_edges = []; boundary_edges = boundary } in
        Alcotest.check_raises "non-neighbour"
          (Error.Error
             (Error.Protocol_error
                {
                  what = "Cluster.assemble";
                  detail =
                    Printf.sprintf "cluster 0 references identifier %s of a non-neighbour" ids.(2);
                  round = None;
                  node = Some 0;
                }))
          (fun () ->
            ignore
              (Cluster.assemble g ~ids
                 [| mk [ ("0", ids.(2), "0") ]; mk []; mk [ ("0", ids.(0), "0") ] |])));
  ]

let rand_graphs ~count ~max_nodes seed =
  let rng = Random.State.make [| seed |] in
  List.init count (fun _ ->
      Generators.random_connected ~rng
        ~n:(1 + Random.State.int rng max_nodes)
        ~extra_edges:(Random.State.int rng 3) ())

let reduction_tests =
  [
    quick "Prop 15: ALL-SELECTED to EULERIAN" (fun () ->
        List.iter
          (fun g -> check_bool (graph_print g) true (Eulerian_red.correct g ~ids:(global_ids g)))
          (rand_graphs ~count:25 ~max_nodes:7 11
          @ [ Graph.singleton "1"; Graph.singleton "0"; Graph.singleton "11" ]));
    quick "Prop 15: image structure" (fun () ->
        let g = Generators.cycle 3 in
        let image = Cluster.apply Eulerian_red.reduction g ~ids:(global_ids g) in
        check_int "doubled" 6 (Graph.card image);
        check_int "quadrupled edges" 12 (Graph.num_edges image));
    quick "Prop 16: ALL-SELECTED to HAMILTONIAN" (fun () ->
        List.iter
          (fun g -> check_bool (graph_print g) true (Hamiltonian_red.correct g ~ids:(global_ids g)))
          (rand_graphs ~count:10 ~max_nodes:4 13
          @ [ Graph.singleton "1"; Graph.singleton "0"; Generators.star 4 ]));
    quick "Prop 17: NOT-ALL-SELECTED to HAMILTONIAN" (fun () ->
        List.iter
          (fun g -> check_bool (graph_print g) true (Hamiltonian_red.co_correct g ~ids:(global_ids g)))
          (rand_graphs ~count:8 ~max_nodes:3 17
          @ [ Graph.singleton "1"; Graph.singleton "0"; Generators.path 3 ]));
    quick "reductions run in constant rounds" (fun () ->
        let rounds =
          List.map
            (fun n ->
              let g = Generators.cycle n in
              (Cluster.stats Eulerian_red.reduction g ~ids:(global_ids g)).Runner.rounds)
            [ 4; 8; 16; 32 ]
        in
        check_bool "constant" true (Step_time.check_rounds ~limit:3 ~rounds));
    quick "reduction step time is polynomial" (fun () ->
        let samples =
          List.concat_map
            (fun n ->
              let g = Generators.cycle n in
              let stats = Cluster.stats Hamiltonian_red.co_reduction g ~ids:(global_ids g) in
              List.concat
                (Array.to_list
                   (Array.mapi
                      (fun r charges ->
                        Array.to_list
                          (Array.mapi (fun u c -> (stats.Runner.input_sizes.(r).(u), c)) charges))
                      stats.Runner.charges)))
            [ 5; 9; 17 ]
        in
        check_bool "fits linear" true (Poly.fits ~bound:(Poly.linear ~offset:600 40) samples));
  ]

let cook_levin_tests =
  let sigma1 = [ ("all-selected", Graph_formulas.all_selected, Properties.all_selected) ] in
  [
    quick "Thm 19 on ALL-SELECTED (random graphs)" (fun () ->
        List.iter
          (fun (name, phi, truth) ->
            List.iter
              (fun g ->
                let ids = global_ids g in
                let image = Cook_levin.reduce phi g ~ids in
                check_bool
                  (name ^ " " ^ graph_print g)
                  (truth g) (Boolean_graph.satisfiable image))
              (rand_graphs ~count:12 ~max_nodes:5 23 @ [ Graph.singleton "1"; Graph.singleton "0" ]))
          sigma1);
    quick "Thm 19 on 3-COLORABLE" (fun () ->
        List.iter
          (fun g ->
            let ids = global_ids g in
            let image = Cook_levin.reduce Graph_formulas.three_colorable g ~ids in
            check_bool (graph_print g) (Properties.three_colorable g)
              (Boolean_graph.satisfiable image))
          [ Generators.cycle 3; Generators.cycle 4; Generators.complete 4; Generators.path 3 ]);
    quick "Thm 19 distributed = centralised" (fun () ->
        List.iter
          (fun g ->
            let ids = global_ids g in
            let central = Cook_levin.reduce Graph_formulas.all_selected g ~ids in
            let distributed = Cook_levin.image_graph Graph_formulas.all_selected g ~ids in
            check_bool (graph_print g) true (Graph.equal central distributed))
          (rand_graphs ~count:6 ~max_nodes:4 29));
    quick "Thm 19 is topology-preserving" (fun () ->
        let g = Generators.star 4 in
        let image = Cook_levin.image_graph Graph_formulas.all_selected g ~ids:(global_ids g) in
        check_int "same card" (Graph.card g) (Graph.card image);
        check_bool "same edges" true (Graph.edges g = Graph.edges image));
    quick "rejects non-Sigma1 sentences" (fun () ->
        Alcotest.check_raises "level" (Invalid_argument "Cook_levin: sentence must be in Sigma_1^LFO")
          (fun () ->
            ignore
              (Cook_levin.reduce Graph_formulas.not_all_selected (Generators.cycle 3)
                 ~ids:(global_ids (Generators.cycle 3)))));
  ]

let three_col_tests =
  let p = BF.Var "p" and q = BF.Var "q" in
  let bgraphs =
    [
      Boolean_graph.make (Generators.path 2) [| BF.Or (p, q); BF.Not p |];
      Boolean_graph.make (Generators.path 2) [| BF.And (p, q); BF.Not p |];
      Boolean_graph.make (Generators.path 3) [| p; BF.iff p q; BF.Not q |];
      Boolean_graph.make (Generators.cycle 3) [| p; BF.Or (BF.Not p, q); BF.Not q |];
      Boolean_graph.make (Graph.singleton "") [| BF.And (p, BF.Not p) |];
      Boolean_graph.make (Graph.singleton "") [| BF.Const true |];
      Boolean_graph.make (Generators.path 2) [| BF.Const false; p |];
    ]
  in
  [
    quick "SAT-GRAPH to 3-SAT-GRAPH" (fun () ->
        List.iteri
          (fun i bg ->
            check_bool (string_of_int i) true (Three_col_red.to_3sat_correct bg ~ids:(global_ids bg)))
          bgraphs);
    quick "3-SAT-GRAPH to 3-COLORABLE" (fun () ->
        List.iteri
          (fun i bg ->
            let ids = global_ids bg in
            let mid = Cluster.apply Three_col_red.to_3sat bg ~ids in
            check_bool (string_of_int i) true (Three_col_red.to_three_col_correct mid ~ids))
          bgraphs);
    quick "full chain preserves satisfiability" (fun () ->
        List.iteri
          (fun i bg ->
            let ids = global_ids bg in
            let image = Three_col_red.full_chain bg ~ids in
            check_bool (string_of_int i) (Boolean_graph.satisfiable bg)
              (Properties.three_colorable image))
          bgraphs);
    qcheck ~count:8 "random path instances through the chain"
      QCheck.(pair (arb_bool_formula ~vars:[ "p"; "q" ] ~depth:2 ()) (arb_bool_formula ~vars:[ "q"; "r" ] ~depth:2 ()))
      (fun (f, g) ->
        let bg = Boolean_graph.make (Generators.path 2) [| f; g |] in
        let ids = global_ids bg in
        Boolean_graph.satisfiable bg = Properties.three_colorable (Three_col_red.full_chain bg ~ids));
  ]

let simulate_tests =
  [
    quick "eulerian decider through Prop 15 decides ALL-SELECTED" (fun () ->
        let sim =
          Simulate.through_reduction Eulerian_red.reduction ~inner:Candidates.eulerian_decider ()
        in
        List.iter
          (fun g ->
            let ids = global_ids g in
            check_bool (graph_print g) (Properties.all_selected g) (Runner.decides sim g ~ids ()))
          (rand_graphs ~count:15 ~max_nodes:6 31));
    quick "all-selected decider through Cook-Levin-style relabelling" (fun () ->
        (* Remark 14: any decided property reduces to ALL-SELECTED by
           relabelling with the verdicts; simulate the all-selected
           decider through that relabelling *)
        let relabel_with_verdicts =
          {
            Cluster.name = "verdict-relabelling";
            id_radius = 2;
            gather_radius = 1;
            compute =
              (fun ctx ball ->
                let verdict = if ctx.Local_algo.degree mod 2 = 0 then "1" else "0" in
                {
                  Cluster.nodes = [ ("0", verdict) ];
                  internal_edges = [];
                  boundary_edges =
                    List.filter_map
                      (fun e ->
                        if e.Gather.dist = 1 then Some ("0", e.Gather.ident, "0") else None)
                      ball.Gather.entries;
                });
          }
        in
        let sim =
          Simulate.through_reduction relabel_with_verdicts ~inner:Candidates.all_selected_decider ()
        in
        List.iter
          (fun g ->
            let ids = global_ids g in
            check_bool (graph_print g) (Properties.eulerian g) (Runner.decides sim g ~ids ()))
          (rand_graphs ~count:10 ~max_nodes:6 37));
    quick "NLP verifier through Thm 20 with lifted certificates" (fun () ->
        let p = BF.Var "p" and q = BF.Var "q" in
        let bg = Boolean_graph.make (Generators.path 2) [| BF.Or (p, q); BF.Not p |] in
        let ids = global_ids bg in
        let red = Three_col_red.to_three_col in
        let result = Runner.run (Cluster.algo_of red) bg ~ids () in
        let clusters =
          Array.init (Graph.card bg) (fun u ->
              Cluster.decode_label (Graph.label result.Runner.output u))
        in
        let image, owners = Cluster.assemble bg ~ids clusters in
        let coloring = Option.get (Properties.find_k_coloring 3 image) in
        let certs' = Array.map Bitstring.of_int coloring in
        let lifted = Simulate.lift_cert_assignment ~owners ~card:(Graph.card bg) ~levels:1 certs' in
        let sim = Simulate.through_reduction red ~inner:(Candidates.color_verifier 3) () in
        check_bool "witness accepted" true (Runner.decides sim bg ~ids ~cert_list:lifted ());
        let zeros = Array.map (fun _ -> "0") certs' in
        let lifted0 = Simulate.lift_cert_assignment ~owners ~card:(Graph.card bg) ~levels:1 zeros in
        check_bool "improper colouring rejected" false
          (Runner.decides sim bg ~ids ~cert_list:lifted0 ()));
    quick "simulation runs in constant rounds" (fun () ->
        let sim =
          Simulate.through_reduction Eulerian_red.reduction ~inner:Candidates.eulerian_decider ()
        in
        let rounds =
          List.map
            (fun n ->
              let g = Generators.cycle n in
              (Runner.run sim g ~ids:(global_ids g) ()).Runner.stats.Runner.rounds)
            [ 4; 8; 16 ]
        in
        check_bool "constant" true (Step_time.check_rounds ~limit:5 ~rounds));
  ]

let suites =
  [
    ("reductions:cluster", cluster_tests);
    ("reductions:classical", reduction_tests);
    ("reductions:cook-levin", cook_levin_tests);
    ("reductions:three-col", three_col_tests);
    ("reductions:simulate", simulate_tests);
  ]

(* Remark 14: the generic verdict-relabelling reduction to ALL-SELECTED *)
let to_all_selected_tests =
  let parity_red =
    To_all_selected.reduction ~name:"eulerian-to-all-selected" ~radius:1 ~decide:(fun ctx _ ->
        ctx.Local_algo.degree mod 2 = 0)
  in
  [
    quick "verdict relabelling reduces EULERIAN to ALL-SELECTED" (fun () ->
        List.iter
          (fun g ->
            let ids = global_ids g in
            check_bool (graph_print g) true
              (To_all_selected.correct parity_red ~decider:Candidates.eulerian_decider g ~ids);
            let image = Cluster.apply parity_red g ~ids in
            check_bool "topology preserved" true (Graph.edges image = Graph.edges g))
          (rand_graphs ~count:10 ~max_nodes:6 41));
    quick "the image property matches the decided property" (fun () ->
        let g = Generators.complete 4 in
        let image = Cluster.apply parity_red g ~ids:(global_ids g) in
        check_bool "K4 has odd degrees" false (Graph.all_labels_one image);
        let k5 = Generators.complete 5 in
        let image5 = Cluster.apply parity_red k5 ~ids:(global_ids k5) in
        check_bool "K5 has even degrees" true (Graph.all_labels_one image5));
  ]

let suites = suites @ [ ("reductions:to-all-selected", to_all_selected_tests) ]
