(* Hierarchy-as-a-service: the wire protocol and the daemon.

   Four layers are covered. The codec layer: request/response frames
   round-trip in both wire modes, and every way a frame can be
   malformed — bad mode byte, over-cap length, truncation, unknown
   tags, trailing garbage — surfaces as a typed [Decode_error], never
   a raw exception. The scheduler: answers match single-process
   [Game.resolve] for all four engines, warm entries report cache hits,
   and the LRU bound actually evicts. The server: concurrent clients
   over a real Unix-domain socket, mixed wire modes on one daemon,
   pipelined responses matched by id. And the substrate satellites:
   the shared Parallel pool does not respawn domains per call, and the
   CEGAR engine now reports iterations for one-level games. *)

open Lph_core

let sigma = Serve_protocol.Accepts Game.Eve
let pi = Serve_protocol.Accepts Game.Adam

let req ?(id = 1) ?(engine = `Sat) ?(query = sigma) property graph =
  { Serve_protocol.id; engine; property; graph; query }

let some_requests =
  [
    req (Serve_protocol.Coloring 3) (Serve_protocol.Cycle 5);
    req ~id:7 ~engine:`Cegar ~query:pi (Serve_protocol.Coloring 2) (Serve_protocol.Path 4);
    req ~id:0 ~engine:`Auto Serve_protocol.Robust_two_col (Serve_protocol.Grid (2, 3));
    req ~engine:`Exhaustive (Serve_protocol.Coloring 2)
      (Serve_protocol.Expander { n = 9; cycles = 2; seed = 42 });
    req ~engine:`Pruned
      ~query:(Serve_protocol.Check [ [| "0"; "1"; "0" |]; [| "1"; "1"; "0" |] ])
      Serve_protocol.Robust_two_col (Serve_protocol.Torus (3, 3));
  ]

let some_responses =
  [
    { Serve_protocol.id = 1; outcome = Result.Ok true; cache_hit = false; micros = 12 };
    { Serve_protocol.id = 0; outcome = Result.Ok false; cache_hit = true; micros = 0 };
    {
      Serve_protocol.id = 9;
      outcome = Result.Error (Error.Decode_error { what = "x"; detail = "y" });
      cache_hit = false;
      micros = 3;
    };
    {
      Serve_protocol.id = 2;
      outcome =
        Result.Error
          (Error.Protocol_error { what = "w"; detail = "d"; round = Some 3; node = None });
      cache_hit = true;
      micros = 77;
    };
    {
      Serve_protocol.id = 3;
      outcome = Result.Error (Error.Resource_exhausted { what = "w"; limit = 5; detail = "d" });
      cache_hit = false;
      micros = 1;
    };
  ]

let roundtrip_request wire r =
  let f = Serve_protocol.frame ~wire Serve_protocol.request_codec r in
  let r', wire' = Serve_protocol.unframe Serve_protocol.request_codec f in
  Alcotest.(check bool) "wire mode preserved" true (wire = wire');
  Alcotest.(check bool) "request round-trips" true (r = r')

let roundtrip_response wire r =
  let f = Serve_protocol.frame ~wire Serve_protocol.response_codec r in
  let r', _ = Serve_protocol.unframe Serve_protocol.response_codec f in
  Alcotest.(check bool) "response round-trips" true (r = r')

let test_roundtrips () =
  List.iter
    (fun wire ->
      List.iter (roundtrip_request wire) some_requests;
      List.iter (roundtrip_response wire) some_responses)
    [ Codec.Packed; Codec.Bits ]

let is_decode_error f =
  match f () with
  | _ -> false
  | exception Error.Error (Error.Decode_error _) -> true
  | exception _ -> false

let test_malformed () =
  let good = Serve_protocol.frame ~wire:Codec.Packed Serve_protocol.request_codec (List.hd some_requests) in
  let unframe s = Serve_protocol.unframe Serve_protocol.request_codec s in
  Alcotest.(check bool) "bad mode byte" true
    (is_decode_error (fun () -> unframe ("Z" ^ String.sub good 1 (String.length good - 1))));
  Alcotest.(check bool) "truncated header" true (is_decode_error (fun () -> unframe "P\x00"));
  Alcotest.(check bool) "truncated payload" true
    (is_decode_error (fun () -> unframe (String.sub good 0 (String.length good - 1))));
  Alcotest.(check bool) "trailing garbage" true (is_decode_error (fun () -> unframe (good ^ "x")));
  let oversized =
    "P\xff\xff\xff\xff" ^ String.make 8 '\x00'
  in
  Alcotest.(check bool) "over-cap length" true (is_decode_error (fun () -> unframe oversized));
  (* unknown tags inside a structurally valid frame *)
  let bad_payload = Codec.encode Codec.int 1 ^ Codec.encode Codec.int 9 in
  let framed =
    let len = String.length bad_payload in
    Printf.sprintf "P%c%c%c%c%s"
      (Char.chr ((len lsr 24) land 0xff))
      (Char.chr ((len lsr 16) land 0xff))
      (Char.chr ((len lsr 8) land 0xff))
      (Char.chr (len land 0xff))
      bad_payload
  in
  Alcotest.(check bool) "unknown engine tag" true (is_decode_error (fun () -> unframe framed))

(* ------------------------------------------------------------------ *)
(* scheduler vs single-process answers *)

let expected (r : Serve_protocol.request) =
  let g = Serve_protocol.build_graph r.Serve_protocol.graph in
  let a = Serve_protocol.arbiter r.Serve_protocol.property in
  let ids = Identifiers.make_global g in
  let universes = Serve_protocol.universes r.Serve_protocol.property in
  match r.Serve_protocol.query with
  | Serve_protocol.Accepts Game.Eve ->
      Game.sigma_accepts ~engine:r.Serve_protocol.engine a g ~ids ~universes
  | Serve_protocol.Accepts Game.Adam ->
      Game.pi_accepts ~engine:r.Serve_protocol.engine a g ~ids ~universes
  | Serve_protocol.Check certs -> a.Arbiter.accepts g ~ids ~certs

let engine_matrix =
  List.concat_map
    (fun engine ->
      [
        req ~engine (Serve_protocol.Coloring 3) (Serve_protocol.Cycle 5);
        req ~engine (Serve_protocol.Coloring 2) (Serve_protocol.Cycle 5);
        req ~engine ~query:pi (Serve_protocol.Coloring 2) (Serve_protocol.Cycle 6);
        req ~engine Serve_protocol.Robust_two_col (Serve_protocol.Cycle 6);
        req ~engine Serve_protocol.Robust_two_col (Serve_protocol.Cycle 5);
      ])
    [ `Exhaustive; `Pruned; `Sat; `Cegar ]

let submit_all sched reqs =
  let n = List.length reqs in
  let slots = Array.make n None in
  let mutex = Mutex.create () in
  let cond = Condition.create () in
  let remaining = ref n in
  List.iteri
    (fun i r ->
      Serve_scheduler.submit sched r ~reply:(fun resp ->
          Mutex.lock mutex;
          slots.(i) <- Some resp;
          decr remaining;
          if !remaining = 0 then Condition.broadcast cond;
          Mutex.unlock mutex))
    reqs;
  Mutex.lock mutex;
  while !remaining > 0 do
    Condition.wait cond mutex
  done;
  Mutex.unlock mutex;
  Array.to_list (Array.map Option.get slots)

let test_scheduler_answers () =
  let sched = Serve_scheduler.create ~cache_mb:64 () in
  Fun.protect ~finally:(fun () -> Serve_scheduler.shutdown sched) @@ fun () ->
  let responses = submit_all sched engine_matrix in
  List.iter2
    (fun r resp ->
      match resp.Serve_protocol.outcome with
      | Result.Ok v -> Alcotest.(check bool) "matches Game.resolve" (expected r) v
      | Result.Error e -> Alcotest.failf "unexpected error: %s" (Error.to_string e))
    engine_matrix responses;
  (* the same stream again: every entry is warm now *)
  let again = submit_all sched engine_matrix in
  List.iter
    (fun resp -> Alcotest.(check bool) "warm rerun is a cache hit" true resp.Serve_protocol.cache_hit)
    again;
  let s = Serve_scheduler.stats sched in
  Alcotest.(check bool) "hits recorded" true (s.Serve_scheduler.cache_hits > 0);
  Alcotest.(check bool) "misses recorded" true (s.Serve_scheduler.cache_misses > 0)

let test_scheduler_check_and_errors () =
  let sched = Serve_scheduler.create ~cache_mb:64 () in
  Fun.protect ~finally:(fun () -> Serve_scheduler.shutdown sched) @@ fun () ->
  (* honest and forged certificates through the Check path *)
  let proper = [| "0"; "1"; "0"; "1" |] in
  let improper = [| "0"; "0"; "0"; "0" |] in
  let check certs = req ~query:(Serve_protocol.Check certs) (Serve_protocol.Coloring 2) (Serve_protocol.Cycle 4) in
  let wrong_levels = check [ proper; proper ] in
  let wrong_width = check [ [| "0"; "1" |] ] in
  let out_of_range = req (Serve_protocol.Coloring 3) (Serve_protocol.Cycle 2) in
  let responses =
    submit_all sched [ check [ proper ]; check [ improper ]; wrong_levels; wrong_width; out_of_range ]
  in
  (match List.map (fun r -> r.Serve_protocol.outcome) responses with
  | [ Result.Ok true; Result.Ok false; Result.Error (Error.Protocol_error _);
      Result.Error (Error.Protocol_error _); Result.Error (Error.Protocol_error _) ] ->
      ()
  | outcomes ->
      Alcotest.failf "unexpected outcomes: %s"
        (String.concat "; "
           (List.map
              (function
                | Result.Ok b -> string_of_bool b
                | Result.Error e -> Error.to_string e)
              outcomes)))

let test_scheduler_eviction () =
  (* a 1 MB bound cannot hold many 4000-node expander entries at once;
     Check queries keep each answer linear-time *)
  let sched = Serve_scheduler.create ~cache_mb:1 () in
  Fun.protect ~finally:(fun () -> Serve_scheduler.shutdown sched) @@ fun () ->
  let reqs =
    List.init 6 (fun i ->
        req ~id:i ~engine:`Pruned
          ~query:(Serve_protocol.Check [ Array.make 4000 "0" ])
          (Serve_protocol.Coloring 2)
          (Serve_protocol.Expander { n = 4000; cycles = 2; seed = i }))
  in
  (* one at a time so each batch re-costs and enforces the bound *)
  List.iter
    (fun r ->
      match (List.hd (submit_all sched [ r ])).Serve_protocol.outcome with
      | Result.Ok _ -> ()
      | Result.Error e -> Alcotest.failf "eviction run failed: %s" (Error.to_string e))
    reqs;
  let s = Serve_scheduler.stats sched in
  Alcotest.(check bool) "evictions happened" true (s.Serve_scheduler.evictions > 0);
  Alcotest.(check bool) "resident set stayed bounded" true (s.Serve_scheduler.entries < 6)

(* ------------------------------------------------------------------ *)
(* the daemon over a real socket *)

let with_server f =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "lph-serve-test-%d-%d.sock" (Unix.getpid ()) (Random.int 100000))
  in
  let server = Serve_server.start ~cache_mb:64 ~socket () in
  Fun.protect ~finally:(fun () -> Serve_server.stop server) (fun () -> f socket)

let test_server_concurrent_clients () =
  with_server @@ fun socket ->
  let slice w reqs = List.filteri (fun i _ -> i mod 4 = w) reqs in
  let results = Array.make 4 [] in
  let workers =
    List.init 4 (fun w ->
        Thread.create
          (fun () ->
            let wire = if w mod 2 = 0 then Codec.Packed else Codec.Bits in
            let client = Serve_client.connect ~wire ~socket () in
            Fun.protect ~finally:(fun () -> Serve_client.close client) @@ fun () ->
            results.(w) <-
              List.map
                (fun r -> (r, Serve_client.request client r))
                (slice w engine_matrix))
          ())
  in
  List.iter Thread.join workers;
  Array.iter
    (List.iter (fun ((r : Serve_protocol.request), resp) ->
         Alcotest.(check int) "id echoed" r.Serve_protocol.id resp.Serve_protocol.id;
         match resp.Serve_protocol.outcome with
         | Result.Ok v -> Alcotest.(check bool) "socket answer matches Game.resolve" (expected r) v
         | Result.Error e -> Alcotest.failf "unexpected error: %s" (Error.to_string e)))
    results

let test_server_pipelining () =
  with_server @@ fun socket ->
  let client = Serve_client.connect ~wire:Codec.Packed ~socket () in
  Fun.protect ~finally:(fun () -> Serve_client.close client) @@ fun () ->
  let reqs =
    List.init 12 (fun i ->
        req ~id:(100 + i)
          ~engine:(if i mod 2 = 0 then `Sat else `Cegar)
          (Serve_protocol.Coloring (2 + (i mod 2)))
          (Serve_protocol.Cycle (5 + (i mod 3))))
  in
  List.iter (Serve_client.send client) reqs;
  let responses = List.init 12 (fun _ -> Serve_client.recv client) in
  List.iter
    (fun (r : Serve_protocol.request) ->
      match
        List.find_opt
          (fun (resp : Serve_protocol.response) ->
            resp.Serve_protocol.id = r.Serve_protocol.id)
          responses
      with
      | None -> Alcotest.failf "no response for id %d" r.Serve_protocol.id
      | Some resp -> (
          match resp.Serve_protocol.outcome with
          | Result.Ok v -> Alcotest.(check bool) "pipelined answer" (expected r) v
          | Result.Error e -> Alcotest.failf "unexpected error: %s" (Error.to_string e)))
    reqs

let test_server_malformed_frames () =
  with_server @@ fun socket ->
  (* a garbage payload in a valid frame: typed error response, and the
     connection keeps serving *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ()) @@ fun () ->
  let junk = "\x07garbage" in
  let header =
    Printf.sprintf "P\x00\x00\x00%c%s" (Char.chr (String.length junk)) junk
  in
  let _ = Unix.write_substring fd header 0 (String.length header) in
  (match Serve_protocol.read_frame fd with
  | Some (wire, payload) -> (
      let resp = Serve_protocol.parse ~wire Serve_protocol.response_codec payload in
      Alcotest.(check int) "error response id 0" 0 resp.Serve_protocol.id;
      match resp.Serve_protocol.outcome with
      | Result.Error (Error.Decode_error _) -> ()
      | _ -> Alcotest.fail "expected a Decode_error outcome")
  | None -> Alcotest.fail "no error response");
  (* same connection still answers real requests *)
  let good = req (Serve_protocol.Coloring 3) (Serve_protocol.Cycle 5) in
  Serve_protocol.write_frame fd ~wire:Codec.Packed Serve_protocol.request_codec good;
  match Serve_protocol.read_frame fd with
  | Some (wire, payload) -> (
      let resp = Serve_protocol.parse ~wire Serve_protocol.response_codec payload in
      match resp.Serve_protocol.outcome with
      | Result.Ok v -> Alcotest.(check bool) "connection survived" (expected good) v
      | Result.Error e -> Alcotest.failf "unexpected error: %s" (Error.to_string e))
  | None -> Alcotest.fail "connection dropped after recoverable decode error"

(* ------------------------------------------------------------------ *)
(* satellites: pool reuse, one-level CEGAR iterations *)

let test_pool_reuse () =
  Parallel.prewarm ();
  let before = Parallel.domains_spawned () in
  for _ = 1 to 25 do
    let sum = List.fold_left ( + ) 0 (Parallel.map (fun x -> x * x) (List.init 40 Fun.id)) in
    Alcotest.(check int) "map result" 20540 sum
  done;
  ignore (Parallel.with_team (fun team -> Parallel.team_iter team 8 ignore));
  let after = Parallel.domains_spawned () in
  Alcotest.(check int) "no new domains after prewarm" before after

let test_cegar_level1_iters () =
  let g = Graph.make ~labels:[| "1"; "1"; "1"; "1"; "1" |] ~edges:[ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ] in
  let ids = Identifiers.make_global g in
  let a = Arbiter.of_local_algo ~id_radius:2 (Candidates.color_verifier 3) in
  let universes = [ Candidates.color_universe 3 ] in
  match Game_cegar.instance ~eve_first:true a g ~ids ~universes with
  | None -> Alcotest.fail "one-level CEGAR instance refused"
  | Some d ->
      (match Game_cegar.value d with
      | Some v ->
          Alcotest.(check bool) "C5 is 3-colorable" true v
      | None -> Alcotest.fail "one-level duel did not decide");
      let s = Game_cegar.stats d in
      Alcotest.(check bool) "iterations recorded for a one-level game" true
        (s.Game_cegar.iterations > 0);
      (match Game_cegar.winning_move d with
      | Some k -> Alcotest.(check int) "witness covers the graph" 5 (Array.length k)
      | None -> Alcotest.fail "no winning move recorded");
      (* and the solve path agrees with the other engines *)
      Alcotest.(check bool) "solve agrees" true
        (Game_cegar.solve ~eve_first:true a g ~ids ~universes = Some true)

let suites =
  [
    ( "serve:protocol",
      [
        Alcotest.test_case "round-trips (packed and bits)" `Quick test_roundtrips;
        Alcotest.test_case "malformed frames are typed decode errors" `Quick test_malformed;
      ] );
    ( "serve:scheduler",
      [
        Alcotest.test_case "answers match Game.resolve (all engines)" `Slow test_scheduler_answers;
        Alcotest.test_case "check queries and typed refusals" `Quick test_scheduler_check_and_errors;
        Alcotest.test_case "LRU bound evicts" `Slow test_scheduler_eviction;
      ] );
    ( "serve:server",
      [
        Alcotest.test_case "concurrent clients, mixed wire modes" `Slow test_server_concurrent_clients;
        Alcotest.test_case "pipelined requests match by id" `Quick test_server_pipelining;
        Alcotest.test_case "malformed frames answered, connection survives" `Quick
          test_server_malformed_frames;
      ] );
    ( "serve:satellites",
      [
        Alcotest.test_case "shared pool spawns no domains per call" `Quick test_pool_reuse;
        Alcotest.test_case "one-level CEGAR games report iterations" `Quick test_cegar_level1_iters;
      ] );
  ]
