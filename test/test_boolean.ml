open Lph_core
open Helpers
module BF = Bool_formula

let env_of list v = List.mem v list

let formula_tests =
  [
    quick "eval" (fun () ->
        let f = BF.And (BF.Var "p", BF.Or (BF.Not (BF.Var "q"), BF.Const false)) in
        check_bool "p=t q=f" true (BF.eval (env_of [ "p" ]) f);
        check_bool "p=t q=t" false (BF.eval (env_of [ "p"; "q" ]) f));
    quick "vars sorted distinct" (fun () ->
        let f = BF.And (BF.Var "q", BF.And (BF.Var "p", BF.Var "q")) in
        Alcotest.(check (list string)) "vars" [ "p"; "q" ] (BF.vars f));
    quick "satisfiable" (fun () ->
        check_bool "sat" true (BF.satisfiable (BF.Or (BF.Var "p", BF.Not (BF.Var "p"))));
        check_bool "unsat" false (BF.satisfiable (BF.And (BF.Var "p", BF.Not (BF.Var "p"))));
        check_bool "const" false (BF.satisfiable (BF.Const false)));
    quick "label encoding examples" (fun () ->
        let g = BF.implies (BF.Var "a#b") (BF.iff (BF.Const true) (BF.Var "")) in
        check_bool "bit string" true (Bitstring.is_bitstring (BF.to_label g));
        check_bool "roundtrip" true (BF.of_label (BF.to_label g) = g));
    qcheck ~count:200 "label roundtrip" (arb_bool_formula ()) (fun f ->
        BF.of_label (BF.to_label f) = f);
    qcheck ~count:100 "rename then eval" (arb_bool_formula ()) (fun f ->
        let renamed = BF.rename (fun v -> v ^ "!") f in
        BF.eval (fun v -> String.length v mod 2 = 0) f
        = BF.eval (fun v -> String.length v mod 2 = 1) renamed);
  ]

let cnf_tests =
  [
    quick "eval / to_formula" (fun () ->
        let cnf = [ [ Cnf.pos "p"; Cnf.neg "q" ]; [ Cnf.pos "q" ] ] in
        check_bool "pq" true (Cnf.eval (env_of [ "p"; "q" ]) cnf);
        check_bool "q only" false (Cnf.eval (env_of [ "q" ]) cnf);
        check_bool "agree with formula" true
          (BF.eval (env_of [ "p"; "q" ]) (Cnf.to_formula cnf)
          = Cnf.eval (env_of [ "p"; "q" ]) cnf));
    quick "is_3cnf" (fun () ->
        check_bool "yes" true (Cnf.is_3cnf [ [ Cnf.pos "a"; Cnf.neg "b"; Cnf.pos "c" ] ]);
        check_bool "no" false
          (Cnf.is_3cnf [ [ Cnf.pos "a"; Cnf.neg "b"; Cnf.pos "c"; Cnf.pos "d" ] ]));
    quick "of_formula" (fun () ->
        let f = BF.And (BF.Or (BF.Var "a", BF.Not (BF.Var "b")), BF.Var "c") in
        match Cnf.of_formula f with
        | None -> Alcotest.fail "CNF shape"
        | Some cnf ->
            check_int "clauses" 2 (List.length cnf);
            check_bool "not cnf" true (Cnf.of_formula (BF.Not (BF.And (BF.Var "a", BF.Var "b"))) = None));
  ]

let tseytin_tests =
  [
    quick "produces 3cnf" (fun () ->
        let f = BF.iff (BF.Var "p") (BF.And (BF.Var "q", BF.Not (BF.Var "r"))) in
        let cnf = Tseytin.transform ~fresh_prefix:"t" f in
        check_bool "3cnf" true (Cnf.is_3cnf cnf));
    quick "reserved prefix rejected" (fun () ->
        Alcotest.check_raises "reserved"
          (Invalid_argument "Tseytin.transform: input uses a reserved fresh variable") (fun () ->
            ignore (Tseytin.transform ~fresh_prefix:"t" (BF.Var "t.1"))));
    qcheck ~count:150 "equisatisfiable with the input" (arb_bool_formula ()) (fun f ->
        BF.satisfiable f = Sat_solver.satisfiable (Tseytin.transform ~fresh_prefix:"aux" f));
    qcheck ~count:100 "satisfying valuations restrict" (arb_bool_formula ~depth:3 ()) (fun f ->
        match Sat_solver.solve (Tseytin.transform ~fresh_prefix:"aux" f) with
        | None -> not (BF.satisfiable f)
        | Some v -> BF.eval v f);
  ]

let solver_tests =
  [
    quick "simple instances" (fun () ->
        check_bool "unit" true (Sat_solver.satisfiable [ [ Cnf.pos "a" ] ]);
        check_bool "conflict" false (Sat_solver.satisfiable [ [ Cnf.pos "a" ]; [ Cnf.neg "a" ] ]);
        check_bool "empty cnf" true (Sat_solver.satisfiable []);
        check_bool "empty clause" false (Sat_solver.satisfiable [ [] ]));
    quick "propagation chain" (fun () ->
        let cnf =
          [
            [ Cnf.pos "a" ];
            [ Cnf.neg "a"; Cnf.pos "b" ];
            [ Cnf.neg "b"; Cnf.pos "c" ];
            [ Cnf.neg "c"; Cnf.neg "a" ];
          ]
        in
        check_bool "unsat by chain" false (Sat_solver.satisfiable cnf));
    quick "pigeonhole 3 into 2" (fun () ->
        (* pigeon i in hole j: variable p_i_j *)
        let p i j = Printf.sprintf "p%d%d" i j in
        let cnf =
          List.init 3 (fun i -> [ Cnf.pos (p i 0); Cnf.pos (p i 1) ])
          @ List.concat_map
              (fun j ->
                [
                  [ Cnf.neg (p 0 j); Cnf.neg (p 1 j) ];
                  [ Cnf.neg (p 0 j); Cnf.neg (p 2 j) ];
                  [ Cnf.neg (p 1 j); Cnf.neg (p 2 j) ];
                ])
              [ 0; 1 ]
        in
        check_bool "unsat" false (Sat_solver.satisfiable cnf));
    qcheck ~count:200 "DPLL agrees with brute force" (arb_bool_formula ()) (fun f ->
        match Cnf.of_formula f with
        | Some cnf -> Sat_solver.satisfiable cnf = BF.satisfiable (Cnf.to_formula cnf)
        | None ->
            (* convert via Tseytin and compare satisfiability *)
            Sat_solver.satisfiable (Tseytin.transform ~fresh_prefix:"z" f) = BF.satisfiable f);
    qcheck ~count:100 "solver models are real models" (arb_bool_formula ~depth:3 ()) (fun f ->
        match Cnf.of_formula (BF.Or (f, BF.Var "fallback")) with
        | Some cnf -> (
            match Sat_solver.solve cnf with Some v -> Cnf.eval v cnf | None -> true)
        | None -> true);
  ]

let cdcl_tests =
  [
    quick "unit propagation fixes root values" (fun () ->
        let s = Sat_solver.create () in
        Sat_solver.add_clause s [ Cnf.neg "a"; Cnf.pos "b" ];
        Sat_solver.add_clause s [ Cnf.neg "b"; Cnf.pos "c" ];
        check_bool "nothing forced yet" true (Sat_solver.root_value s "b" = None);
        Sat_solver.add_clause s [ Cnf.pos "a" ];
        check_bool "a forced" true (Sat_solver.root_value s "a" = Some true);
        check_bool "b propagated" true (Sat_solver.root_value s "b" = Some true);
        check_bool "c propagated" true (Sat_solver.root_value s "c" = Some true);
        check_bool "unseen var unknown" true (Sat_solver.root_value s "d" = None);
        check_bool "propagations counted" true ((Sat_solver.stats s).propagations >= 2);
        check_bool "no decisions taken" true ((Sat_solver.stats s).decisions = 0));
    quick "conflict analysis backjumps over an irrelevant level" (fun () ->
        (* assuming a, b, c in that order: d is propagated and refuted
           purely from a and c, so the learned clause must jump the
           b level (level 2) in one step *)
        let s = Sat_solver.create () in
        Sat_solver.add_clause s [ Cnf.neg "a"; Cnf.neg "c"; Cnf.pos "d" ];
        Sat_solver.add_clause s [ Cnf.neg "a"; Cnf.neg "c"; Cnf.neg "d" ];
        check_bool "a,b,c contradictory" true
          (Sat_solver.solve_with ~assumptions:[ Cnf.pos "a"; Cnf.pos "b"; Cnf.pos "c" ] s = None);
        check_bool "jumped at least two levels" true ((Sat_solver.stats s).max_backjump >= 2);
        check_bool "learned a clause" true ((Sat_solver.stats s).learned >= 1);
        (* the clause database is untouched: other assumption sets
           still satisfiable on the same instance *)
        (match Sat_solver.solve_with ~assumptions:[ Cnf.pos "a"; Cnf.pos "b" ] s with
        | None -> Alcotest.fail "a,b should be satisfiable"
        | Some v -> check_bool "model refutes c" false (v "c"));
        match Sat_solver.solve_with ~assumptions:[ Cnf.pos "c" ] s with
        | None -> Alcotest.fail "c alone should be satisfiable"
        | Some v -> check_bool "model refutes a" false (v "a"));
    quick "assumptions do not persist" (fun () ->
        let s = Sat_solver.create () in
        Sat_solver.add_clause s [ Cnf.pos "p"; Cnf.pos "q" ];
        check_bool "p assumable" true
          (match Sat_solver.solve_with ~assumptions:[ Cnf.pos "p"; Cnf.neg "q" ] s with
          | Some v -> v "p" && not (v "q")
          | None -> false);
        check_bool "opposite assumption next call" true
          (match Sat_solver.solve_with ~assumptions:[ Cnf.neg "p" ] s with
          | Some v -> (not (v "p")) && v "q"
          | None -> false);
        check_bool "p still open at root" true (Sat_solver.root_value s "p" = None));
    quick "clauses added between solves take effect" (fun () ->
        let s = Sat_solver.create () in
        Sat_solver.add_clause s [ Cnf.pos "x"; Cnf.pos "y" ];
        check_bool "sat" true (Sat_solver.solve_with s <> None);
        Sat_solver.add_clause s [ Cnf.neg "x" ];
        check_bool "still sat via y" true
          (match Sat_solver.solve_with s with Some v -> v "y" | None -> false);
        Sat_solver.add_clause s [ Cnf.neg "y" ];
        check_bool "now unsat" true (Sat_solver.solve_with s = None);
        check_bool "permanently unsat" true (Sat_solver.solve_with ~assumptions:[ Cnf.pos "z" ] s = None));
    quick "assumption on a fresh variable" (fun () ->
        let s = Sat_solver.create () in
        check_bool "forced true in the model" true
          (match Sat_solver.solve_with ~assumptions:[ Cnf.pos "z" ] s with
          | Some v -> v "z"
          | None -> false));
    qcheck ~count:100 "assumption solving agrees with clause addition"
      QCheck.(pair (arb_bool_formula ~depth:3 ()) (small_list bool))
      (fun (f, phases) ->
        (* solving under assumptions == satisfiability of the CNF with
           the assumptions added as unit clauses *)
        let cnf = Tseytin.transform ~fresh_prefix:"aux" f in
        let vars = List.filteri (fun i _ -> i < List.length phases) (Cnf.vars cnf) in
        let assumptions =
          List.map2 (fun v positive -> if positive then Cnf.pos v else Cnf.neg v) vars
            (List.filteri (fun i _ -> i < List.length vars) phases)
        in
        let s = Sat_solver.create () in
        List.iter (Sat_solver.add_clause s) cnf;
        let incremental = Sat_solver.solve_with ~assumptions s <> None in
        let oneshot = Sat_solver.satisfiable (List.map (fun l -> [ l ]) assumptions @ cnf) in
        incremental = oneshot);
    quick "copy is an independent snapshot" (fun () ->
        let s = Sat_solver.create () in
        Sat_solver.add_clause s [ Cnf.pos "a"; Cnf.pos "b" ];
        Sat_solver.add_clause s [ Cnf.neg "a"; Cnf.pos "c" ];
        check_bool "original sat" true (Sat_solver.solve_with s <> None);
        let s' = Sat_solver.copy s in
        check_bool "copy counts from zero" true ((Sat_solver.stats s').decisions = 0);
        Sat_solver.add_clause s' [ Cnf.neg "a" ];
        Sat_solver.add_clause s' [ Cnf.neg "b" ];
        check_bool "copy driven unsat" true (Sat_solver.solve_with s' = None);
        check_bool "original untouched" true
          (match Sat_solver.solve_with ~assumptions:[ Cnf.pos "a" ] s with
          | Some v -> v "a" && v "c"
          | None -> false);
        Sat_solver.add_clause s [ Cnf.neg "c" ];
        check_bool "original driven unsat under a" true
          (Sat_solver.solve_with ~assumptions:[ Cnf.pos "a" ] s = None);
        check_bool "copy's verdict unchanged" true (Sat_solver.solve_with s' = None));
    quick "copy preserves learned state" (fun () ->
        (* same instance as the backjump test: learn on the original,
           copy, and the copy must answer every assumption set alike *)
        let s = Sat_solver.create () in
        Sat_solver.add_clause s [ Cnf.neg "a"; Cnf.neg "c"; Cnf.pos "d" ];
        Sat_solver.add_clause s [ Cnf.neg "a"; Cnf.neg "c"; Cnf.neg "d" ];
        check_bool "a,c contradictory" true
          (Sat_solver.solve_with ~assumptions:[ Cnf.pos "a"; Cnf.pos "c" ] s = None);
        let s' = Sat_solver.copy s in
        List.iter
          (fun assumptions ->
            check_bool "copy agrees with original" true
              (Sat_solver.solve_with ~assumptions s' <> None
              = (Sat_solver.solve_with ~assumptions s <> None)))
          [ [ Cnf.pos "a"; Cnf.pos "c" ]; [ Cnf.pos "a" ]; [ Cnf.pos "c" ]; [] ]);
    quick "restarts fire on a hard instance without changing the verdict" (fun () ->
        let var i h = Printf.sprintf "p%d_%d" i h in
        let pigeonhole ~pigeons ~holes =
          List.init pigeons (fun i -> List.init holes (fun h -> Cnf.pos (var i h)))
          @ List.concat_map
              (fun h ->
                List.concat_map
                  (fun i ->
                    List.filter_map
                      (fun j -> if j > i then Some [ Cnf.neg (var i h); Cnf.neg (var j h) ] else None)
                      (List.init pigeons Fun.id))
                  (List.init pigeons Fun.id))
              (List.init holes Fun.id)
        in
        let s = Sat_solver.create () in
        List.iter (Sat_solver.add_clause s) (pigeonhole ~pigeons:7 ~holes:6);
        check_bool "7 pigeons, 6 holes: unsat" true (Sat_solver.solve_with s = None);
        let st = Sat_solver.stats s in
        check_bool "enough conflicts to restart" true (st.conflicts > 100);
        check_bool "restarted at least once" true (st.restarts >= 1);
        let sat_instance = pigeonhole ~pigeons:6 ~holes:6 in
        let s2 = Sat_solver.create () in
        List.iter (Sat_solver.add_clause s2) sat_instance;
        match Sat_solver.solve_with s2 with
        | None -> Alcotest.fail "6 pigeons fit 6 holes"
        | Some v -> check_bool "model is real" true (Cnf.eval v sat_instance));
  ]

let unsat_core_tests =
  [
    quick "core names only the relevant assumptions" (fun () ->
        (* a forces c which is banned; d is irrelevant and must not
           pollute the core *)
        let s = Sat_solver.create () in
        Sat_solver.add_clause s [ Cnf.neg "a"; Cnf.pos "b" ];
        Sat_solver.add_clause s [ Cnf.neg "b"; Cnf.pos "c" ];
        Sat_solver.add_clause s [ Cnf.neg "c" ];
        check_bool "unsat under a, d" true
          (Sat_solver.solve_with ~assumptions:[ Cnf.pos "a"; Cnf.pos "d" ] s = None);
        let core = Sat_solver.unsat_core s in
        check_bool "a in core" true (List.mem (Cnf.pos "a") core);
        check_bool "d not in core" false (List.mem (Cnf.pos "d") core);
        check_bool "core within assumptions" true
          (List.for_all (fun l -> List.mem l [ Cnf.pos "a"; Cnf.pos "d" ]) core));
    quick "core replays to unsat in a fresh solver" (fun () ->
        let clauses =
          [ [ Cnf.neg "a"; Cnf.pos "b" ]; [ Cnf.neg "b"; Cnf.pos "c" ]; [ Cnf.neg "c" ] ]
        in
        let s = Sat_solver.create () in
        List.iter (Sat_solver.add_clause s) clauses;
        check_bool "unsat" true (Sat_solver.solve_with ~assumptions:[ Cnf.pos "a" ] s = None);
        let core = Sat_solver.unsat_core s in
        let fresh = Sat_solver.create () in
        List.iter (Sat_solver.add_clause fresh) clauses;
        check_bool "replay unsat" true (Sat_solver.solve_with ~assumptions:core fresh = None));
    quick "root-level unsat yields an empty core" (fun () ->
        let s = Sat_solver.create () in
        Sat_solver.add_clause s [ Cnf.pos "x" ];
        Sat_solver.add_clause s [ Cnf.neg "x" ];
        check_bool "unsat without assumptions" true
          (Sat_solver.solve_with ~assumptions:[ Cnf.pos "y" ] s = None);
        check_bool "empty core" true (Sat_solver.unsat_core s = []));
    quick "core unavailable after a satisfiable solve" (fun () ->
        let s = Sat_solver.create () in
        Sat_solver.add_clause s [ Cnf.pos "a"; Cnf.pos "b" ];
        check_bool "sat" true (Sat_solver.solve_with ~assumptions:[ Cnf.pos "a" ] s <> None);
        match Sat_solver.unsat_core s with
        | _ -> Alcotest.fail "unsat_core after SAT must raise"
        | exception Invalid_argument _ -> ());
    qcheck ~count:100 "cores are subsets of the assumptions and replay"
      QCheck.(pair (arb_bool_formula ~depth:3 ()) (small_list bool))
      (fun (f, phases) ->
        let cnf = Tseytin.transform ~fresh_prefix:"aux" f in
        let vars = List.filteri (fun i _ -> i < List.length phases) (Cnf.vars cnf) in
        let assumptions =
          List.map2 (fun v positive -> if positive then Cnf.pos v else Cnf.neg v) vars
            (List.filteri (fun i _ -> i < List.length vars) phases)
        in
        let s = Sat_solver.create () in
        List.iter (Sat_solver.add_clause s) cnf;
        match Sat_solver.solve_with ~assumptions s with
        | Some _ -> true
        | None ->
            let core = Sat_solver.unsat_core s in
            List.for_all (fun l -> List.mem l assumptions) core
            &&
            let fresh = Sat_solver.create () in
            List.iter (Sat_solver.add_clause fresh) cnf;
            Sat_solver.solve_with ~assumptions:core fresh = None);
  ]

let boolean_graph_tests =
  let p = BF.Var "p" and q = BF.Var "q" in
  [
    quick "satisfiability with shared variables" (fun () ->
        let bg = Boolean_graph.make (Generators.path 2) [| BF.Or (p, q); BF.Not p |] in
        check_bool "sat" true (Boolean_graph.satisfiable bg);
        let bg2 = Boolean_graph.make (Generators.path 2) [| BF.And (p, q); BF.Not p |] in
        check_bool "unsat" false (Boolean_graph.satisfiable bg2));
    quick "non-adjacent nodes may disagree" (fun () ->
        (* p at node 0 and p at node 2 are different instances: the
           middle node does not mention p, so no constraint links them *)
        let bg = Boolean_graph.make (Generators.path 3) [| p; BF.Const true; BF.Not p |] in
        check_bool "sat" true (Boolean_graph.satisfiable bg));
    quick "adjacent chain forces propagation" (fun () ->
        let bg = Boolean_graph.make (Generators.path 3) [| p; BF.iff p q; BF.Not q |] in
        check_bool "unsat" false (Boolean_graph.satisfiable bg));
    quick "sat restriction to NODE" (fun () ->
        check_bool "sat" true (Boolean_graph.satisfiable (Boolean_graph.sat (BF.Var "x")));
        check_bool "unsat" false
          (Boolean_graph.satisfiable (Boolean_graph.sat (BF.And (BF.Var "x", BF.Not (BF.Var "x"))))));
    quick "is_3cnf_graph" (fun () ->
        let cnf_formula = BF.And (BF.Or (p, BF.Not q), q) in
        let bg = Boolean_graph.make (Generators.path 2) [| cnf_formula; p |] in
        check_bool "yes" true (Boolean_graph.is_3cnf_graph bg);
        let bg2 = Boolean_graph.make (Generators.path 2) [| BF.Not (BF.And (p, q)); p |] in
        check_bool "no" false (Boolean_graph.is_3cnf_graph bg2));
    quick "checkable_locally" (fun () ->
        let bg = Boolean_graph.make (Generators.path 2) [| p; BF.Not p |] in
        check_bool "inconsistent valuations caught" false
          (Boolean_graph.checkable_locally bg ~valuations:(fun u _ -> u = 0));
        let bg2 = Boolean_graph.make (Generators.path 2) [| p; BF.Not q |] in
        check_bool "disjoint vars fine" true
          (Boolean_graph.checkable_locally bg2 ~valuations:(fun u _ -> u = 0)));
    qcheck ~count:40 "DPLL path agrees with brute force"
      QCheck.(pair (arb_bool_formula ~depth:3 ()) (arb_bool_formula ~depth:3 ()))
      (fun (f, g) ->
        let bg = Boolean_graph.make (Generators.path 2) [| f; g |] in
        Boolean_graph.satisfiable bg = Boolean_graph.satisfiable_brute bg);
    qcheck ~count:25 "DPLL triangle agrees with brute force"
      QCheck.(triple (arb_bool_formula ~depth:2 ()) (arb_bool_formula ~depth:2 ()) (arb_bool_formula ~depth:2 ()))
      (fun (f, g, h) ->
        let bg = Boolean_graph.make (Generators.cycle 3) [| f; g; h |] in
        Boolean_graph.satisfiable bg = Boolean_graph.satisfiable_brute bg);
  ]

let suites =
  [
    ("boolean:formula", formula_tests);
    ("boolean:cnf", cnf_tests);
    ("boolean:tseytin", tseytin_tests);
    ("boolean:solver", solver_tests);
    ("boolean:cdcl", cdcl_tests);
    ("boolean:unsat-core", unsat_core_tests);
    ("boolean:graph", boolean_graph_tests);
  ]
