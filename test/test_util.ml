open Lph_core
open Helpers

let bitstring_tests =
  [
    quick "is_bitstring accepts" (fun () ->
        check_bool "ok" true (Bitstring.is_bitstring "0101");
        check_bool "empty" true (Bitstring.is_bitstring "");
        check_bool "hash" false (Bitstring.is_bitstring "01#1");
        check_bool "hash variant" true (Bitstring.is_bitstring_hash "01#1"));
    quick "of_int / to_int" (fun () ->
        check_string "zero" "0" (Bitstring.of_int 0);
        check_string "six" "110" (Bitstring.of_int 6);
        check_int "roundtrip 6" 6 (Bitstring.to_int (Bitstring.of_int 6));
        check_int "empty is 0" 0 (Bitstring.to_int ""));
    quick "of_int_width pads" (fun () ->
        check_string "width" "0011" (Bitstring.of_int_width ~width:4 3);
        check_string "zero width" "" (Bitstring.of_int_width ~width:0 0);
        Alcotest.check_raises "too wide" (Invalid_argument "Bitstring.of_int_width: does not fit")
          (fun () -> ignore (Bitstring.of_int_width ~width:2 4)));
    quick "all_of_length" (fun () ->
        check_int "2^3" 8 (List.length (Bitstring.all_of_length 3));
        check_int "2^0" 1 (List.length (Bitstring.all_of_length 0));
        check_bool "sorted distinct" true
          (let l = Bitstring.all_of_length 3 in
           List.sort_uniq compare l = l));
    quick "all_up_to_length" (fun () ->
        check_int "sum" (1 + 2 + 4 + 8) (List.length (Bitstring.all_up_to_length 3)));
    quick "split/join hash" (fun () ->
        Alcotest.(check (list string)) "split" [ "a"; "b"; "" ] (Bitstring.split_hash "a#b#");
        check_string "join" "a#b#" (Bitstring.join_hash [ "a"; "b"; "" ]));
    qcheck "of_int/to_int roundtrip" QCheck.(int_bound 100000) (fun n ->
        Bitstring.to_int (Bitstring.of_int n) = n);
    qcheck "to_int monotone on equal length"
      QCheck.(pair (int_bound 1000) (int_bound 1000))
      (fun (a, b) ->
        let w = 12 in
        let sa = Bitstring.of_int_width ~width:w a and sb = Bitstring.of_int_width ~width:w b in
        compare a b = compare sa sb);
  ]

let codec_tests =
  let roundtrip codec value = Codec.decode codec (Codec.encode codec value) = value in
  [
    quick "int examples" (fun () ->
        check_bool "0" true (roundtrip Codec.int 0);
        check_bool "127" true (roundtrip Codec.int 127);
        check_bool "128" true (roundtrip Codec.int 128);
        check_bool "big" true (roundtrip Codec.int 123_456_789));
    quick "string examples" (fun () ->
        check_bool "empty" true (roundtrip Codec.string "");
        check_bool "hash" true (roundtrip Codec.string "a#b\x00c"));
    quick "composites" (fun () ->
        let c = Codec.(list (pair string (option int))) in
        check_bool "mixed" true (roundtrip c [ ("a", Some 3); ("", None); ("zz", Some 0) ]));
    quick "decode rejects garbage" (fun () ->
        match Codec.decode Codec.int (Codec.encode Codec.int 5 ^ "x") with
        | _ -> Alcotest.fail "expected Decode_error"
        | exception Error.Error (Error.Decode_error { what = "Codec.decode"; _ }) -> ());
    quick "bits encoding is a bit string" (fun () ->
        let s = Codec.encode_bits Codec.string "hello" in
        check_bool "bits" true (Bitstring.is_bitstring s);
        check_string "roundtrip" "hello" (Codec.decode_bits Codec.string s));
    qcheck "string roundtrip" QCheck.(string) (fun s -> roundtrip Codec.string s);
    qcheck "int list roundtrip"
      QCheck.(list (int_bound 1_000_000))
      (fun l -> Codec.decode Codec.(list int) (Codec.encode Codec.(list int) l) = l);
    qcheck "bits roundtrip"
      QCheck.(pair string (list small_nat))
      (fun (s, l) ->
        let c = Codec.(pair string (list int)) in
        Codec.decode_bits c (Codec.encode_bits c (s, l)) = (s, l));
  ]

let poly_tests =
  [
    quick "eval" (fun () ->
        let p = Poly.of_coeffs [ 1; 2; 3 ] in
        check_int "p(0)" 1 (Poly.eval p 0);
        check_int "p(2)" (1 + 4 + 12) (Poly.eval p 2);
        check_int "degree" 2 (Poly.degree p));
    quick "normalisation" (fun () ->
        check_int "trailing zeros" 1 (Poly.degree (Poly.of_coeffs [ 1; 2; 0; 0 ])));
    quick "algebra" (fun () ->
        let p = Poly.linear ~offset:1 2 and q = Poly.monomial ~coeff:1 ~degree:2 in
        check_int "add" (Poly.eval p 5 + Poly.eval q 5) (Poly.eval (Poly.add p q) 5);
        check_int "mul" (Poly.eval p 5 * Poly.eval q 5) (Poly.eval (Poly.mul p q) 5);
        check_int "compose" (Poly.eval p (Poly.eval q 3)) (Poly.eval (Poly.compose p q) 3));
    quick "max_bound dominates" (fun () ->
        let p = Poly.of_coeffs [ 5; 1 ] and q = Poly.of_coeffs [ 1; 7 ] in
        let m = Poly.max_bound p q in
        List.iter
          (fun n ->
            check_bool "ge p" true (Poly.eval m n >= Poly.eval p n);
            check_bool "ge q" true (Poly.eval m n >= Poly.eval q n))
          [ 0; 1; 5; 100 ]);
    quick "fits" (fun () ->
        let bound = Poly.linear ~offset:2 3 in
        check_bool "yes" true (Poly.fits ~bound [ (0, 2); (10, 32) ]);
        check_bool "no" false (Poly.fits ~bound [ (10, 33) ]));
    qcheck "add commutes"
      QCheck.(pair (list (int_bound 9)) (list (int_bound 9)))
      (fun (a, b) ->
        let p = Poly.of_coeffs a and q = Poly.of_coeffs b in
        Poly.eval (Poly.add p q) 7 = Poly.eval (Poly.add q p) 7);
  ]

let combinat_tests =
  [
    quick "subsets count" (fun () ->
        check_int "2^4" 16 (List.length (List.of_seq (Combinat.subsets [ 1; 2; 3; 4 ]))));
    quick "tuples count" (fun () ->
        check_int "3^2" 9 (List.length (List.of_seq (Combinat.tuples [ 1; 2; 3 ] 2)));
        check_int "arity 0" 1 (List.length (List.of_seq (Combinat.tuples [ 1; 2 ] 0))));
    quick "product" (fun () ->
        check_int "2*3" 6
          (List.length (List.of_seq (Combinat.product [ [ 1; 2 ]; [ 3; 4; 5 ] ])));
        Alcotest.(check (list (list int)))
          "order" [ [] ]
          (List.of_seq (Combinat.product [])));
    quick "permutations" (fun () ->
        check_int "3!" 6 (List.length (List.of_seq (Combinat.permutations [ 1; 2; 3 ])));
        check_bool "all distinct" true
          (let l = List.of_seq (Combinat.permutations [ 1; 2; 3; 4 ]) in
           List.length (List.sort_uniq compare l) = 24));
    quick "choose" (fun () ->
        check_int "C(5,2)" 10 (List.length (List.of_seq (Combinat.choose [ 1; 2; 3; 4; 5 ] 2))));
    quick "lazy early exit" (fun () ->
        (* the subset stream of a large list must be consumable lazily *)
        let s = Combinat.subsets (List.init 100 Fun.id) in
        check_bool "found" true (Combinat.exists_seq (fun _ -> true) s));
    qcheck "subsets are subsets"
      QCheck.(list_of_size (QCheck.Gen.return 5) (int_bound 100))
      (fun l ->
        Combinat.for_all_seq (fun s -> List.for_all (fun x -> List.mem x l) s) (Combinat.subsets l));
  ]

let structure_tests =
  [
    quick "create and query" (fun () ->
        let s =
          Structure.create ~card:4 ~unary:[| [ 0; 2 ] |] ~binary:[| [ (0, 1); (1, 2) ]; [ (3, 0) ] |]
        in
        check_bool "unary" true (Structure.mem_unary s 1 0);
        check_bool "unary not" false (Structure.mem_unary s 1 1);
        check_bool "binary" true (Structure.mem_binary s 1 0 1);
        check_bool "binary dir" false (Structure.mem_binary s 1 1 0);
        check_bool "connected sym" true (Structure.connected s 1 0);
        check_bool "connected rel2" true (Structure.connected s 0 3);
        Alcotest.(check (pair int int)) "signature" (1, 2) (Structure.signature s));
    quick "neighbours and distance" (fun () ->
        let s = Structure.create ~card:4 ~unary:[||] ~binary:[| [ (0, 1); (1, 2); (2, 3) ] |] in
        Alcotest.(check (list int)) "nbrs of 1" [ 0; 2 ] (Structure.neighbours s 1);
        Alcotest.(check (option int)) "dist" (Some 3) (Structure.distance s 0 3);
        Alcotest.(check (list int)) "ball 1 around 1" [ 0; 1; 2 ] (Structure.ball s ~radius:1 1));
    quick "distance unreachable" (fun () ->
        let s = Structure.create ~card:3 ~unary:[||] ~binary:[| [ (0, 1) ] |] in
        Alcotest.(check (option int)) "none" None (Structure.distance s 0 2));
    quick "invalid structures rejected" (fun () ->
        Alcotest.check_raises "range" (Invalid_argument "Structure.create: element out of range")
          (fun () -> ignore (Structure.create ~card:2 ~unary:[| [ 5 ] |] ~binary:[||])));
  ]

let suites =
  [
    ("util:bitstring", bitstring_tests);
    ("util:codec", codec_tests);
    ("util:poly", poly_tests);
    ("util:combinat", combinat_tests);
    ("structure", structure_tests);
  ]
