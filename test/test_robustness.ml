(* Failure injection and fuzzing: malformed certificates, corrupted
   wire data and adversarial cluster encodings must degrade into clean
   rejections or typed errors — never crashes or false acceptance. *)

open Lph_core
open Helpers

let codec_fuzz_tests =
  [
    qcheck ~count:300 "decode_bits never crashes unexpectedly" arb_bitstring (fun s ->
        match Codec.decode_bits Codec.(list (pair string int)) s with
        | _ -> true
        | exception Error.Error (Error.Decode_error _) -> true);
    qcheck ~count:200 "decode of truncated encodings fails cleanly"
      QCheck.(pair (list small_nat) (int_bound 20))
      (fun (l, cut) ->
        let encoded = Codec.encode Codec.(list int) l in
        let cut = min cut (String.length encoded) in
        let truncated = String.sub encoded 0 (String.length encoded - cut) in
        match Codec.decode Codec.(list int) truncated with
        | decoded -> cut = 0 && decoded = l
        | exception Error.Error (Error.Decode_error _) -> cut > 0 || l <> []);
    qcheck ~count:200 "bool formula labels reject corruption"
      QCheck.(pair (arb_bool_formula ~depth:2 ()) (int_bound 7))
      (fun (f, flips) ->
        let label = Bytes.of_string (Bool_formula.to_label f) in
        if Bytes.length label = 0 then true
        else begin
          for k = 0 to flips - 1 do
            let i = k * 7 mod Bytes.length label in
            Bytes.set label i (if Bytes.get label i = '0' then '1' else '0')
          done;
          match Bool_formula.of_label (Bytes.to_string label) with
          | _ -> true (* corruption may still decode to some formula *)
          | exception Error.Error (Error.Decode_error _) -> true
        end);
  ]

let certificate_injection_tests =
  [
    quick "garbage certificates make verifiers reject, not crash" (fun () ->
        let g = Generators.cycle 4 in
        let ids = global_ids g in
        List.iter
          (fun (name, algo) ->
            List.iter
              (fun certs ->
                match Runner.decides algo g ~ids ~cert_list:certs () with
                | (_ : bool) -> ()
                | exception e ->
                    Alcotest.failf "%s crashed on garbage certs: %s" name (Printexc.to_string e))
              [
                [| "##"; "1#"; ""; "#" |];
                [| "111111111111"; "0"; "1"; "" |];
                Array.make 4 (String.concat "#" [ "0"; "1"; "0"; "1" ]);
              ])
          [
            ("color", Candidates.color_verifier 3);
            ("counter", Candidates.exact_counter_verifier ~cap:2);
            ("mod-counter", Candidates.mod_counter_verifier ~period:3);
          ]);
    quick "fagin arbiter survives undecodable certificates" (fun () ->
        let compiled = Fagin.compile Graph_formulas.two_colorable in
        let g = Generators.path 2 in
        let garbage = [| "1010"; "1" |] in
        (* not a valid fragment encoding: must evaluate, not crash *)
        match
          compiled.Fagin.arbiter.Arbiter.accepts g ~ids:(global_ids g) ~certs:[ garbage ]
        with
        | (_ : bool) -> ()
        | exception e -> Alcotest.failf "fagin arbiter crashed: %s" (Printexc.to_string e));
    quick "simulation ignores undecodable hosted certificates" (fun () ->
        let sim =
          Simulate.through_reduction Eulerian_red.reduction
            ~inner:(Candidates.color_verifier 3) ()
        in
        let g = Generators.cycle 3 in
        match Runner.decides sim g ~ids:(global_ids g) ~cert_list:[| "101"; ""; "1#1" |] () with
        | (_ : bool) -> ()
        | exception e -> Alcotest.failf "simulation crashed: %s" (Printexc.to_string e));
    quick "oversized certificates fail the (r,p) bound check" (fun () ->
        let g = Generators.path 2 in
        let ids = global_ids g in
        let bound = { Certificates.radius = 1; poly = Poly.const 1 } in
        check_bool "rejected" false (Certificates.is_bounded g ~ids bound [| "01"; "" |]));
  ]

let cluster_injection_tests =
  let g2 = Generators.path 2 in
  let ids2 = global_ids g2 in
  let ok_node = ("0", "") in
  [
    quick "duplicate local names rejected" (fun () ->
        let c = { Cluster.nodes = [ ok_node; ok_node ]; internal_edges = []; boundary_edges = [] } in
        match Cluster.assemble g2 ~ids:ids2 [| c; c |] with
        | _ -> Alcotest.fail "expected failure"
        | exception Error.Error (Error.Protocol_error { what = "Cluster.assemble"; _ } as e) ->
            check_bool "mentions duplicate" true
              (let msg = Error.to_string e in
               String.length msg > 0 && String.sub msg 0 16 = "Cluster.assemble"));
    quick "unknown remote local name rejected" (fun () ->
        let c other =
          { Cluster.nodes = [ ok_node ]; internal_edges = []; boundary_edges = [ ("0", other, "ghost") ] }
        in
        match Cluster.assemble g2 ~ids:ids2 [| c ids2.(1); c ids2.(0) |] with
        | _ -> Alcotest.fail "expected failure"
        | exception Error.Error (Error.Protocol_error _) -> ());
    quick "disconnected assembly rejected" (fun () ->
        let c = { Cluster.nodes = [ ok_node ]; internal_edges = []; boundary_edges = [] } in
        match Cluster.assemble g2 ~ids:ids2 [| c; c |] with
        | _ -> Alcotest.fail "expected failure"
        | exception Error.Error (Error.Protocol_error _) -> ());
    quick "empty cluster rejected" (fun () ->
        let empty = { Cluster.nodes = []; internal_edges = []; boundary_edges = [] } in
        match Cluster.assemble g2 ~ids:ids2 [| empty; empty |] with
        | _ -> Alcotest.fail "expected failure"
        | exception Error.Error (Error.Protocol_error _) -> ());
  ]

let machine_robustness_tests =
  [
    quick "even_label_ones decides per-label parity" (fun () ->
        let run labels =
          let g = Generators.cycle ~labels 3 in
          Turing.accepts (Turing.run Machines.even_label_ones g ~ids:(global_ids g) ())
        in
        check_bool "all even" true (run [| "11"; "0"; "1010" |]);
        check_bool "one odd" false (run [| "11"; "1"; "1010" |]);
        check_bool "empty labels are even" true (run [| ""; ""; "" |]));
    quick "step limit catches runaway machines" (fun () ->
        let spin =
          {
            Turing.name = "spin";
            delta = (fun _ (_, i, s) -> { Turing.next = 5; write_internal = i; write_sending = s; moves = (Turing.Stay, Turing.Stay, Turing.Stay) });
          }
        in
        let g = Graph.singleton "" in
        match Turing.run ~step_limit:50 spin g ~ids:[| "" |] () with
        | _ -> Alcotest.fail "expected divergence"
        | exception Turing.Diverged _ -> ());
    quick "round limit catches machines that only pause" (fun () ->
        let pause =
          {
            Turing.name = "pause";
            delta = (fun _ (_, i, s) -> { Turing.next = Turing.q_pause; write_internal = i; write_sending = s; moves = (Turing.Stay, Turing.Stay, Turing.Stay) });
          }
        in
        let g = Graph.singleton "" in
        match Turing.run ~round_limit:7 pause g ~ids:[| "" |] () with
        | _ -> Alcotest.fail "expected divergence"
        | exception Turing.Diverged _ -> ());
    qcheck ~count:40 "even_label_ones agrees with the parity predicate"
      (arb_graph ~max_nodes:5 ~label_bits:3 ())
      (fun g ->
        let parity u =
          String.fold_left (fun acc ch -> if ch = '1' then not acc else acc) true (Graph.label g u)
        in
        Turing.accepts (Turing.run Machines.even_label_ones g ~ids:(global_ids g) ())
        = List.for_all parity (Graph.nodes g));
  ]

let suites =
  [
    ("robustness:codec", codec_fuzz_tests);
    ("robustness:certificates", certificate_injection_tests);
    ("robustness:clusters", cluster_injection_tests);
    ("robustness:machines", machine_robustness_tests);
  ]
