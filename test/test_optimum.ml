(* The certificate-budget optimiser: known optima on the shipped
   specs, proof replay, engine agreement, certification reductions and
   the optimiser lint rules. The known-optima cases pin the paper-side
   facts the optimiser must rediscover: EULERIAN and 2-COL (as an LP
   decider) need no certificates at all, k-colourability needs exactly
   the bits of one colour, and odd cycles admit no 2-colouring
   certificate at any budget. *)

open Lph_core
open Helpers
module Opt = Optimum
module CR = Cert_reduction

let fam name =
  match Opt.family name with
  | Some f -> f
  | None -> Alcotest.failf "unknown family %s" name

let search ?engine ~name ~arbiter ~universes family size =
  Opt.search ?engine ~name ~arbiter ~universes ~family:(fam family) ~size ()

let opt_bits r =
  match r.Opt.r_verdict with
  | Opt.Optimum { bits; _ } -> bits
  | Opt.Rejected _ -> Alcotest.failf "%s/%s: rejected, expected an optimum" r.Opt.r_spec r.Opt.r_family
  | Opt.Unsupported why -> Alcotest.failf "%s/%s: unsupported (%s)" r.Opt.r_spec r.Opt.r_family why

let proof_of r =
  match r.Opt.r_verdict with
  | Opt.Optimum { proof; _ } | Opt.Rejected { proof; _ } -> proof
  | Opt.Unsupported why -> Alcotest.failf "%s: unsupported (%s)" r.Opt.r_spec why

let check_core_proof name r =
  match proof_of r with
  | Opt.Core p ->
      check_bool (name ^ ": core within assumptions") true (Opt.core_subset p);
      check_bool (name ^ ": core replays to UNSAT") true (Opt.replay p)
  | Opt.Floor | Opt.Refuted_by_game _ ->
      Alcotest.failf "%s: expected a replayable UNSAT core proof" name

let arb name =
  let specs = (Lint_registry.builtin ()).Lint_registry.arbiters in
  match List.find_opt (fun s -> s.Lint_registry.a_name = name) specs with
  | Some s -> (s.Lint_registry.arbiter, s.Lint_registry.universes)
  | None -> Alcotest.failf "registry has no arbiter %s" name

(* ---- known optima -------------------------------------------------- *)

let test_eulerian_zero () =
  (* EULERIAN is decided with 0-bit certificates: it is in Σ0 *)
  let arbiter, universes = arb "eulerian-decider" in
  List.iter
    (fun size ->
      let r = search ~name:"eulerian-decider" ~arbiter ~universes "cycle" size in
      check_int "eulerian optimum" 0 (opt_bits r);
      check_bool "eulerian floor proof" true (proof_of r = Opt.Floor))
    [ 4; 8 ]

let test_two_col_zero_even () =
  (* 2-COL on even cycles: the Σ0 decider accepts, so 0 bits suffice *)
  let arbiter, universes = arb "local-2col-decider-r1" in
  let r = search ~name:"local-2col-decider-r1" ~arbiter ~universes "even-cycle" 6 in
  check_int "2col even-cycle optimum" 0 (opt_bits r)

let test_color2_even_cycles () =
  (* the 2-colour VERIFIER needs one bit (the colour) on even cycles,
     with a replayable UNSAT proof that budget 0 is impossible *)
  let arbiter, universes = arb "2-color-verifier" in
  List.iter
    (fun size ->
      let r = search ~name:"2-color-verifier" ~arbiter ~universes "even-cycle" size in
      check_int "2-color even-cycle optimum" 1 (opt_bits r);
      check_bool "engines agree" true r.Opt.r_engines_agree;
      check_core_proof "2-color lower bound" r)
    [ 4; 6 ]

let test_color2_odd_cycles_rejected () =
  (* odd cycles are not 2-colourable: rejected at EVERY budget, and the
     rejection at the full budget carries a replayable UNSAT core *)
  let arbiter, universes = arb "2-color-verifier" in
  List.iter
    (fun size ->
      let r = search ~name:"2-color-verifier" ~arbiter ~universes "odd-cycle" size in
      (match r.Opt.r_verdict with
      | Opt.Rejected { max_budget; _ } -> check_int "odd cycle max budget" 1 max_budget
      | _ -> Alcotest.fail "odd cycle must be rejected");
      check_bool "engines agree on rejection" true r.Opt.r_engines_agree;
      check_core_proof "odd-cycle refutation" r)
    [ 5; 7 ]

(* Exhaustive ground truth: the smallest b such that some assignment
   drawn from the universes restricted to length <= b (on Eve's single
   level) makes every node accept — by brute enumeration over the
   product of per-node candidate lists. *)
let exhaustive_optimum arbiter ~universes g =
  let ids = Identifiers.make_global g in
  let universe = List.hd (universes g ids) in
  let n = Graph.card g in
  let cap =
    List.fold_left
      (fun acc v -> List.fold_left (fun acc c -> max acc (String.length c)) acc (universe v))
      0 (List.init n Fun.id)
  in
  let accepts_at b =
    let slots = List.init n (fun v -> List.filter (fun c -> String.length c <= b) (universe v)) in
    (not (List.exists (fun s -> s = []) slots))
    && Seq.exists
         (fun combo ->
           let certs = Array.of_list combo in
           arbiter.Arbiter.accepts g ~ids ~certs:[ certs ])
         (Combinat.product slots)
  in
  let rec go b = if b > cap then None else if accepts_at b then Some b else go (b + 1) in
  go 0

let test_color3_matches_exhaustive () =
  let arbiter, universes = arb "3-color-verifier" in
  let mk = Option.get universes in
  List.iter
    (fun size ->
      let family = if size mod 2 = 0 then "even-cycle" else "odd-cycle" in
      let r = search ~name:"3-color-verifier" ~arbiter ~universes family size in
      let g = (fam family).Opt.build size in
      match exhaustive_optimum arbiter ~universes:mk g with
      | Some bits ->
          check_int (Printf.sprintf "3-color optimum on %s %d" family size) bits (opt_bits r);
          check_bool "engines agree" true r.Opt.r_engines_agree
      | None -> Alcotest.failf "3-color: exhaustive search rejected %s %d" family size)
    [ 4; 5; 6 ]

let test_sigma2_optimum () =
  (* the Σ2 robust verifier still needs exactly the one colour bit *)
  let arbiter, universes = arb "robust-2col-verifier" in
  let r = search ~name:"robust-2col-verifier" ~arbiter ~universes "even-cycle" 4 in
  check_int "robust-2col optimum" 1 (opt_bits r);
  check_bool "engines agree" true r.Opt.r_engines_agree;
  check_core_proof "robust-2col lower bound" r

let test_engines_fixed_explicitly () =
  (* pinning either engine as primary must not change the verdict *)
  let arbiter, universes = arb "2-color-verifier" in
  let a = search ~engine:`Sat ~name:"2-color-verifier" ~arbiter ~universes "even-cycle" 6 in
  let b = search ~engine:`Cegar ~name:"2-color-verifier" ~arbiter ~universes "even-cycle" 6 in
  check_int "same optimum under both primaries" (opt_bits a) (opt_bits b)

let test_memoisation () =
  let arbiter, universes = arb "2-color-verifier" in
  let a = search ~name:"2-color-verifier" ~arbiter ~universes "even-cycle" 4 in
  let b = search ~name:"2-color-verifier" ~arbiter ~universes "even-cycle" 4 in
  check_bool "memoised result is the same value" true (a == b)

let test_family_env_knobs () =
  check_bool "default sizes pass through" true (Opt.family_sizes ~default:[ 4; 6 ] = [ 4; 6 ]);
  check_int "natural cap without override" 7 (Opt.budget_cap ~natural:7)

(* ---- certification reductions -------------------------------------- *)

let test_builtin_reductions_consistent () =
  List.iter
    (fun red ->
      List.iter
        (fun ck ->
          check_bool
            (Printf.sprintf "%s on %s consistent (%s)" ck.CR.ck_reduction ck.CR.ck_instance
               ck.CR.ck_detail)
            true ck.CR.ck_consistent)
        (CR.check red))
    (CR.builtin ())

let test_transfer_bounds_hold () =
  (* the transfer functions are honest upper bounds: spot-check that a
     transferred bound is never below the directly searched optimum *)
  List.iter
    (fun red ->
      List.iter
        (fun ck ->
          match (ck.CR.ck_source_bits, ck.CR.ck_transferred) with
          | Some src, Some tr ->
              check_bool
                (Printf.sprintf "%s/%s: %d <= %d" ck.CR.ck_reduction ck.CR.ck_instance src tr)
                true (src <= tr)
          | _ -> ())
        (CR.check red))
    (CR.builtin ())

(* ---- the optimiser lint rules -------------------------------------- *)

let test_builtin_opt_lint () =
  (* the shipped registry under --optimize: zero errors, at least one
     budget/slack warning (the 3-colour verifier on 2-colourable even
     cycles), and every probed spec reports a verdict *)
  let report = Lint.run ~optimize:true (Lint_registry.builtin ()) in
  check_bool "no errors" false (Lint.has_errors report);
  check_bool "a slack warning fires" true
    (List.exists
       (fun (d : Diagnostic.t) ->
         d.Diagnostic.rule = Diagnostic.Budget_slack
         && d.Diagnostic.severity = Diagnostic.Warning)
       report.Lint.diagnostics);
  check_bool "searches ran" true (report.Lint.optima <> []);
  check_bool "reductions checked" true (report.Lint.reduction_checks <> []);
  List.iter
    (fun (r : Opt.result) ->
      check_bool
        (Printf.sprintf "%s on %s/%d supported" r.Opt.r_spec r.Opt.r_family r.Opt.r_size)
        true
        (match r.Opt.r_verdict with Opt.Unsupported _ -> false | _ -> true))
    report.Lint.optima

let test_fixtures_opt_lint () =
  (* each optimiser fixture trips exactly its planned rule *)
  let report = Lint.run ~optimize:true (Lint_fixtures.violations ()) in
  List.iter
    (fun (name, rule, severity) ->
      check_bool
        (Printf.sprintf "%s trips %s" name (Diagnostic.rule_id rule))
        true
        (List.exists
           (fun (d : Diagnostic.t) ->
             d.Diagnostic.spec = name && d.Diagnostic.rule = rule
             && d.Diagnostic.severity = severity)
           report.Lint.diagnostics))
    Lint_fixtures.opt_expectations;
  (* and no fixture fails for an unplanned reason *)
  let planned = Lint_fixtures.expectations @ Lint_fixtures.opt_expectations in
  List.iter
    (fun (d : Diagnostic.t) ->
      check_bool
        (Printf.sprintf "%s/%s expected" d.Diagnostic.spec (Diagnostic.rule_id d.Diagnostic.rule))
        true
        (List.exists
           (fun (name, rule, severity) ->
             d.Diagnostic.spec = name && d.Diagnostic.rule = rule
             && d.Diagnostic.severity = severity)
           planned))
    (Lint.errors report)

let test_default_run_hides_opt_rules () =
  (* without ~optimize the new rules stay silent even on the fixtures:
     the default run's contract (zero diagnostics on the registry) is
     unchanged *)
  let report = Lint.run (Lint_fixtures.violations ()) in
  check_bool "no budget/* finding without --optimize" false
    (List.exists
       (fun (d : Diagnostic.t) ->
         match d.Diagnostic.rule with
         | Diagnostic.Budget_slack | Diagnostic.Reduction_consistency
         | Diagnostic.Lower_bound_replay ->
             true
         | _ -> false)
       report.Lint.diagnostics);
  check_bool "no searches without --optimize" true (report.Lint.optima = [])

let suites =
  [
    ( "optimum",
      [
        quick "eulerian needs 0 bits" test_eulerian_zero;
        quick "2col decider needs 0 bits on even cycles" test_two_col_zero_even;
        quick "2-color verifier needs 1 bit on even cycles" test_color2_even_cycles;
        quick "odd cycles rejected at every budget" test_color2_odd_cycles_rejected;
        quick "3-color optimum matches exhaustive search" test_color3_matches_exhaustive;
        quick "sigma2 optimum with core proof" test_sigma2_optimum;
        quick "explicit engines agree" test_engines_fixed_explicitly;
        quick "search is memoised" test_memoisation;
        quick "env knob defaults" test_family_env_knobs;
      ] );
    ( "cert-reduction",
      [
        quick "builtin reductions are consistent" test_builtin_reductions_consistent;
        quick "transferred bounds dominate direct optima" test_transfer_bounds_hold;
      ] );
    ( "opt-lint",
      [
        quick "registry optimise run: no errors, slack fires" test_builtin_opt_lint;
        quick "fixtures trip the optimiser rules" test_fixtures_opt_lint;
        quick "optimiser rules silent without --optimize" test_default_run_hides_opt_rules;
      ] );
  ]
