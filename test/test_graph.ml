open Lph_core
open Helpers

let graph_tests =
  [
    quick "make validates connectivity" (fun () ->
        Alcotest.check_raises "disconnected"
          (Graph.Invalid "graph is not connected (1 of 2 nodes reachable)") (fun () ->
            ignore (Graph.make ~labels:[| "1"; "1" |] ~edges:[])));
    quick "make rejects self loops" (fun () ->
        Alcotest.check_raises "loop" (Graph.Invalid "self-loop at node 0") (fun () ->
            ignore (Graph.make ~labels:[| "1" |] ~edges:[ (0, 0) ])));
    quick "make rejects duplicate edges" (fun () ->
        Alcotest.check_raises "dup" (Graph.Invalid "duplicate edge") (fun () ->
            ignore (Graph.make ~labels:[| "1"; "1" |] ~edges:[ (0, 1); (1, 0) ])));
    quick "make rejects bad labels" (fun () ->
        Alcotest.check_raises "label" (Graph.Invalid "label of node 0 is not a bit string")
          (fun () -> ignore (Graph.make ~labels:[| "abc" |] ~edges:[])));
    quick "accessors" (fun () ->
        let g = Graph.make ~labels:[| "0"; "1"; "" |] ~edges:[ (0, 1); (1, 2) ] in
        check_int "card" 3 (Graph.card g);
        check_int "edges" 2 (Graph.num_edges g);
        check_int "degree" 2 (Graph.degree g 1);
        Alcotest.(check (list int)) "nbrs" [ 0; 2 ] (Graph.neighbours g 1);
        check_bool "has" true (Graph.has_edge g 2 1);
        check_bool "hasn't" false (Graph.has_edge g 0 2);
        check_string "label" "1" (Graph.label g 1);
        check_bool "single" false (Graph.is_node_graph g));
    quick "singleton" (fun () ->
        let g = Graph.singleton "101" in
        check_bool "node graph" true (Graph.is_node_graph g);
        check_int "card" 1 (Graph.card g));
    quick "with_labels and map_labels" (fun () ->
        let g = Generators.cycle 3 in
        let g' = Graph.map_labels (fun u _ -> Bitstring.of_int u) g in
        check_string "label 2" "10" (Graph.label g' 2);
        check_bool "all one" true (Graph.all_labels_one g);
        check_bool "not all one" false (Graph.all_labels_one g'));
    quick "union_disjoint" (fun () ->
        let g = Generators.path 2 and h = Generators.path 3 in
        let u = Graph.union_disjoint g h ~bridge:[ (1, 0) ] in
        check_int "card" 5 (Graph.card u);
        check_int "edges" 4 (Graph.num_edges u);
        check_bool "bridge" true (Graph.has_edge u 1 2));
    qcheck "edges are symmetric and within range" (arb_graph ()) (fun g ->
        List.for_all
          (fun (u, v) -> u < v && Graph.has_edge g u v && Graph.has_edge g v u)
          (Graph.edges g));
    qcheck "degree sums to twice the edges" (arb_graph ()) (fun g ->
        List.fold_left (fun acc u -> acc + Graph.degree g u) 0 (Graph.nodes g)
        = 2 * Graph.num_edges g);
  ]

let generator_tests =
  [
    quick "path" (fun () ->
        let g = Generators.path 5 in
        check_int "edges" 4 (Graph.num_edges g);
        check_int "max degree" 2 (Graph.max_degree g));
    quick "cycle" (fun () ->
        let g = Generators.cycle 6 in
        check_int "edges" 6 (Graph.num_edges g);
        check_bool "regular" true (List.for_all (fun u -> Graph.degree g u = 2) (Graph.nodes g)));
    quick "complete" (fun () ->
        check_int "K5 edges" 10 (Graph.num_edges (Generators.complete 5)));
    quick "star" (fun () ->
        let g = Generators.star 6 in
        check_int "centre degree" 5 (Graph.degree g 0);
        check_int "leaf degree" 1 (Graph.degree g 3));
    quick "grid" (fun () ->
        let g = Generators.grid ~rows:3 ~cols:4 () in
        check_int "card" 12 (Graph.card g);
        check_int "edges" ((2 * 4) + (3 * 3)) (Graph.num_edges g));
    quick "binary tree" (fun () ->
        let g = Generators.balanced_binary_tree ~depth:3 () in
        check_int "card" 15 (Graph.card g);
        check_int "edges" 14 (Graph.num_edges g));
    quick "glued cycle" (fun () ->
        let g, g' = Generators.glued_even_cycle 5 in
        check_int "odd" 5 (Graph.card g);
        check_int "even" 10 (Graph.card g'));
    qcheck "random graphs are valid" (arb_graph ~max_nodes:10 ()) (fun g -> Graph.card g >= 1);
  ]

let neighborhood_tests =
  [
    quick "distances on a path" (fun () ->
        let g = Generators.path 5 in
        check_int "0->4" 4 (Neighborhood.distance g 0 4);
        check_int "2->2" 0 (Neighborhood.distance g 2 2);
        check_int "ecc" 4 (Neighborhood.eccentricity g 0);
        check_int "diameter" 4 (Neighborhood.diameter g));
    quick "ball" (fun () ->
        let g = Generators.cycle 6 in
        Alcotest.(check (list int)) "radius 1" [ 0; 1; 5 ] (Neighborhood.ball g ~radius:1 0);
        check_int "radius 3 covers" 6 (List.length (Neighborhood.ball g ~radius:3 0)));
    quick "induced subgraph" (fun () ->
        let g = Generators.cycle 5 in
        let ind = Neighborhood.induced g [ 0; 1; 2 ] in
        check_int "card" 3 (Graph.card ind.Neighborhood.subgraph);
        check_int "edges" 2 (Graph.num_edges ind.Neighborhood.subgraph);
        check_int "back" 2 (ind.Neighborhood.of_sub (Option.get (ind.Neighborhood.to_sub 2))));
    quick "r_neighbourhood matches ball" (fun () ->
        let g = Generators.grid ~rows:3 ~cols:3 () in
        let ind = Neighborhood.r_neighbourhood g ~radius:1 4 in
        check_int "centre ball" 5 (Graph.card ind.Neighborhood.subgraph));
    quick "ball_information" (fun () ->
        let g = Generators.path 3 in
        let ids = [| "00"; "01"; "10" |] in
        (* node 1 ball radius 1 = all three nodes: each contributes 1 + 1 + 2 *)
        check_int "info" 12 (Neighborhood.ball_information g ~ids ~radius:1 1));
    qcheck "distance is a metric (triangle on random pairs)"
      (arb_graph ~max_nodes:7 ())
      (fun g ->
        let n = Graph.card g in
        List.for_all
          (fun u ->
            List.for_all
              (fun v ->
                List.for_all
                  (fun w ->
                    Neighborhood.distance g u w
                    <= Neighborhood.distance g u v + Neighborhood.distance g v w)
                  (List.init n Fun.id))
              (List.init n Fun.id))
          (List.init n Fun.id));
  ]

let identifier_tests =
  [
    quick "compare_id is the paper's order" (fun () ->
        check_bool "prefix" true (Identifiers.compare_id "0" "00" < 0);
        check_bool "bit" true (Identifiers.compare_id "01" "1" < 0);
        check_bool "equal" true (Identifiers.compare_id "10" "10" = 0));
    quick "make_global is globally unique and small" (fun () ->
        let g = Generators.cycle 6 in
        let ids = Identifiers.make_global g in
        check_bool "global" true (Identifiers.is_globally_unique g ids);
        check_bool "locally r=3" true (Identifiers.is_locally_unique g ~radius:3 ids));
    quick "cyclic local uniqueness" (fun () ->
        let g = Generators.cycle 20 in
        let ids = Identifiers.cyclic g ~period:5 in
        check_bool "r=1" true (Identifiers.is_locally_unique g ~radius:1 ids);
        check_bool "not r=5" false (Identifiers.is_locally_unique g ~radius:5 ids));
    quick "duplicate" (fun () ->
        let ids = [| "a0" |] in
        ignore ids;
        let ids = [| "00"; "01" |] in
        Alcotest.(check (array string)) "dup" [| "00"; "01"; "00"; "01" |] (Identifiers.duplicate ids));
    quick "single node gets the empty identifier" (fun () ->
        let g = Graph.singleton "1" in
        let ids = Identifiers.make_small g ~radius:1 in
        check_string "empty" "" ids.(0);
        check_bool "small" true (Identifiers.is_small g ~radius:1 ids));
    qcheck "make_small is locally unique and small (radius 1)"
      (arb_graph ~max_nodes:8 ())
      (fun g ->
        let ids = Identifiers.make_small g ~radius:1 in
        Identifiers.is_locally_unique g ~radius:1 ids && Identifiers.is_small g ~radius:1 ids);
    qcheck "make_small radius 2" (arb_graph ~max_nodes:8 ()) (fun g ->
        let ids = Identifiers.make_small g ~radius:2 in
        Identifiers.is_locally_unique g ~radius:2 ids && Identifiers.is_small g ~radius:2 ids);
  ]

let certificate_tests =
  [
    quick "trivial" (fun () ->
        let g = Generators.path 3 in
        Alcotest.(check (array string)) "empty" [| ""; ""; "" |] (Certificates.trivial g));
    quick "bounds" (fun () ->
        let g = Generators.path 3 in
        let ids = global_ids g in
        let bound = { Certificates.radius = 1; poly = Poly.linear 1 } in
        (* node 0's 1-ball = nodes 0,1: info = (1 + 1 + 2) * 2 = 8 *)
        check_int "max_length" 8 (Certificates.max_length g ~ids bound 0);
        check_bool "bounded" true (Certificates.is_bounded g ~ids bound [| "00000000"; ""; "1" |]);
        check_bool "unbounded" false (Certificates.is_bounded g ~ids bound [| "000000000"; ""; "1" |]));
    quick "list assignment and split" (fun () ->
        let k1 = [| "0"; "1" |] and k2 = [| ""; "11" |] in
        let l = Certificates.list_assignment [ k1; k2 ] in
        check_string "node0" "0#" l.(0);
        check_string "node1" "1#11" l.(1);
        Alcotest.(check (list string)) "split" [ "0"; "" ] (Certificates.split_list ~levels:2 l.(0));
        Alcotest.(check (list string)) "pad" [ "1"; "11"; "" ] (Certificates.split_list ~levels:3 l.(1));
        Alcotest.(check (list string)) "drop" [ "1" ] (Certificates.split_list ~levels:1 l.(1)));
    quick "all_assignments count" (fun () ->
        let g = Generators.path 2 in
        (* each node: bitstrings of length <= 1 -> 3 choices *)
        check_int "9" 9 (Seq.length (Certificates.all_assignments g ~max_len:1)));
  ]

let structural_tests =
  [
    quick "figure 4 shape" (fun () ->
        (* a triangle with labels of lengths 1, 2, 0 *)
        let g = Graph.make ~labels:[| "1"; "01"; "" |] ~edges:[ (0, 1); (1, 2); (0, 2) ] in
        let repr = Structural.of_graph g in
        let s = Structural.structure repr in
        check_int "card" 6 (Structure.card s);
        check_int "card fn" 6 (Structural.card g);
        (* edge relation is symmetric inside ⇀1, bit successors one-way *)
        let n0 = Structural.to_index repr (Structural.Node 0) in
        let n1 = Structural.to_index repr (Structural.Node 1) in
        let b11 = Structural.to_index repr (Structural.Bit (1, 1)) in
        let b12 = Structural.to_index repr (Structural.Bit (1, 2)) in
        check_bool "edge" true (Structure.mem_binary s 1 n0 n1);
        check_bool "edge sym" true (Structure.mem_binary s 1 n1 n0);
        check_bool "bit succ" true (Structure.mem_binary s 1 b11 b12);
        check_bool "bit succ oneway" false (Structure.mem_binary s 1 b12 b11);
        check_bool "ownership" true (Structure.mem_binary s 2 n1 b11);
        check_bool "bit value" true (Structure.mem_unary s 1 b12);
        check_bool "bit value 0" false (Structure.mem_unary s 1 b11));
    quick "structural degree" (fun () ->
        let g = Graph.make ~labels:[| "11"; "" |] ~edges:[ (0, 1) ] in
        check_int "deg+len" 3 (Structural.structural_degree g 0);
        check_int "deg only" 1 (Structural.structural_degree g 1);
        check_int "max" 3 (Structural.max_structural_degree g);
        check_bool "GRAPH(3)" true (Structural.in_graph_delta g 3);
        check_bool "not GRAPH(2)" false (Structural.in_graph_delta g 2));
    quick "node_elements" (fun () ->
        let g = Graph.make ~labels:[| "101" |] ~edges:[] in
        let repr = Structural.of_graph g in
        check_int "4 elements" 4 (List.length (Structural.node_elements repr 0)));
    qcheck "structural card = nodes + label bits" (arb_graph ~label_bits:2 ()) (fun g ->
        Structural.card g
        = Graph.card g
          + List.fold_left (fun acc u -> acc + String.length (Graph.label g u)) 0 (Graph.nodes g));
    qcheck "neighbourhood example of section 3" (arb_graph ()) (fun g ->
        (* N_0 structural card = 1 + |label| for every node *)
        List.for_all
          (fun u ->
            let ind = Neighborhood.r_neighbourhood g ~radius:0 u in
            Structural.card ind.Neighborhood.subgraph = 1 + String.length (Graph.label g u))
          (Graph.nodes g));
  ]

let isomorphism_tests =
  [
    quick "cycle relabelings are isomorphic" (fun () ->
        let g = Generators.cycle 5 in
        let h =
          Graph.make ~labels:(Array.make 5 "1")
            ~edges:[ (0, 2); (2, 4); (4, 1); (1, 3); (3, 0) ]
        in
        check_bool "iso" true (Isomorphism.isomorphic g h));
    quick "labels matter" (fun () ->
        let g = Generators.cycle 3 in
        let h = Graph.with_labels g [| "1"; "1"; "0" |] in
        check_bool "not iso" false (Isomorphism.isomorphic g h);
        check_bool "rotation iso" true
          (Isomorphism.isomorphic h (Graph.with_labels g [| "0"; "1"; "1" |])));
    quick "path vs star" (fun () ->
        check_bool "not iso" false (Isomorphism.isomorphic (Generators.path 4) (Generators.star 4)));
    quick "mapping preserves edges" (fun () ->
        let g = Generators.grid ~rows:2 ~cols:2 () in
        match Isomorphism.find g g with
        | None -> Alcotest.fail "self iso"
        | Some m ->
            check_bool "preserves" true
              (List.for_all (fun (u, v) -> Graph.has_edge g m.(u) m.(v)) (Graph.edges g)));
    qcheck "graphs are isomorphic to themselves" (arb_graph ~max_nodes:6 ()) (fun g ->
        Isomorphism.isomorphic g g);
  ]

(* ------------------------------------------------------------------ *)
(* CSR core vs reference list implementation.

   The reference is the seed's list-based design: adjacency as sorted
   int lists, distances by Queue-BFS over those lists, balls by
   filtering a full distance row, induced subgraphs by filtering the
   global edge list. Both cores are built from the SAME raw edge spec
   (never from each other's accessors), so any disagreement is a CSR
   bug, not a circular identity. *)

module Ref_core = struct
  type t = { labels : string array; adj : int list array; edge_list : (int * int) list }

  let build ~labels ~edges =
    let n = Array.length labels in
    let canon (u, v) = if u < v then (u, v) else (v, u) in
    let edge_list = List.sort_uniq compare (List.map canon edges) in
    let adj = Array.make n [] in
    List.iter
      (fun (u, v) ->
        adj.(u) <- v :: adj.(u);
        adj.(v) <- u :: adj.(v))
      edge_list;
    Array.iteri (fun u ns -> adj.(u) <- List.sort compare ns) adj;
    { labels; adj; edge_list }

  let card t = Array.length t.labels
  let neighbours t u = t.adj.(u)
  let degree t u = List.length t.adj.(u)
  let has_edge t u v = List.mem v t.adj.(u)

  let distances t src =
    let dist = Array.make (card t) (-1) in
    dist.(src) <- 0;
    let queue = Queue.create () in
    Queue.add src queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun v ->
          if dist.(v) < 0 then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v queue
          end)
        t.adj.(u)
    done;
    dist

  let ball t ~radius u =
    let dist = distances t u in
    List.filter (fun v -> dist.(v) >= 0 && dist.(v) <= radius) (List.init (card t) Fun.id)

  (* the seed's induced construction: filter the global edge list *)
  let induced t nodes =
    let nodes = List.sort_uniq compare nodes in
    let index = Hashtbl.create 16 in
    List.iteri (fun i u -> Hashtbl.replace index u i) nodes;
    let labels = Array.of_list (List.map (fun u -> t.labels.(u)) nodes) in
    let edges =
      List.filter_map
        (fun (u, v) ->
          match (Hashtbl.find_opt index u, Hashtbl.find_opt index v) with
          | Some i, Some j -> Some (i, j)
          | _ -> None)
        t.edge_list
    in
    Graph.make ~labels ~edges
end

(* a raw connected edge spec: spanning tree + random extras, built with
   plain code so neither core is derived from the other *)
let gen_spec ?(max_nodes = 24) () =
  QCheck.Gen.(
    int_range 1 max_nodes >>= fun n ->
    int_range 0 n >>= fun extra ->
    int_bound 1_000_000 >>= fun seed ->
    let rng = Random.State.make [| seed; 7 |] in
    let seen = Hashtbl.create 16 in
    let edges = ref [] in
    let add u v =
      let k = (min u v * n) + max u v in
      if u <> v && not (Hashtbl.mem seen k) then begin
        Hashtbl.replace seen k ();
        edges := (u, v) :: !edges
      end
    in
    for u = 1 to n - 1 do
      add (Random.State.int rng u) u
    done;
    for _ = 1 to extra do
      add (Random.State.int rng n) (Random.State.int rng n)
    done;
    let labels = Array.init n (fun _ -> if Random.State.bool rng then "1" else "0") in
    return (labels, !edges))

let arb_spec ?max_nodes () =
  QCheck.make
    ~print:(fun (labels, edges) ->
      Printf.sprintf "n=%d edges=[%s]" (Array.length labels)
        (String.concat "; " (List.map (fun (u, v) -> Printf.sprintf "(%d,%d)" u v) edges)))
    (gen_spec ?max_nodes ())

let both_cores (labels, edges) =
  (Graph.make ~labels ~edges, Ref_core.build ~labels ~edges)

let equivalence_tests =
  [
    qcheck "neighbours, degree agree" (arb_spec ()) (fun spec ->
        let g, r = both_cores spec in
        List.for_all
          (fun u ->
            Graph.neighbours g u = Ref_core.neighbours r u
            && Graph.degree g u = Ref_core.degree r u)
          (Graph.nodes g));
    qcheck "has_edge agrees on all pairs" (arb_spec ~max_nodes:12 ()) (fun spec ->
        let g, r = both_cores spec in
        let n = Graph.card g in
        List.for_all
          (fun u ->
            List.for_all (fun v -> Graph.has_edge g u v = Ref_core.has_edge r u v) (List.init n Fun.id))
          (List.init n Fun.id));
    qcheck "edge list is canonical and identical" (arb_spec ()) (fun spec ->
        let g, r = both_cores spec in
        Graph.edges g = r.Ref_core.edge_list
        && Graph.num_edges g = List.length r.Ref_core.edge_list);
    qcheck "iter_edges enumerates exactly the edge list" (arb_spec ()) (fun spec ->
        let g, _ = both_cores spec in
        let acc = ref [] in
        Graph.iter_edges g (fun u v -> acc := (u, v) :: !acc);
        List.rev !acc = Graph.edges g);
    qcheck "distance rows agree" (arb_spec ()) (fun spec ->
        let g, r = both_cores spec in
        List.for_all
          (fun u -> Neighborhood.distances g u = Ref_core.distances r u)
          (Graph.nodes g));
    qcheck "balls agree at radii 0-3" (arb_spec ()) (fun spec ->
        let g, r = both_cores spec in
        List.for_all
          (fun radius ->
            List.for_all
              (fun u -> Neighborhood.ball g ~radius u = Ref_core.ball r ~radius u)
              (Graph.nodes g))
          [ 0; 1; 2; 3 ]);
    qcheck "ball_distances carry the true distances" (arb_spec ()) (fun spec ->
        let g, r = both_cores spec in
        List.for_all
          (fun u ->
            let row = Ref_core.distances r u in
            List.for_all
              (fun (v, d) -> row.(v) = d)
              (Neighborhood.ball_distances g ~radius:2 u))
          (Graph.nodes g));
    qcheck "induced ball subgraphs equal the reference construction" (arb_spec ()) (fun spec ->
        let g, r = both_cores spec in
        List.for_all
          (fun u ->
            let members = Neighborhood.ball g ~radius:1 u in
            let ind = (Neighborhood.induced g members).Neighborhood.subgraph in
            let ref_ind = Ref_core.induced r members in
            (* both order members by ascending node index, so the graphs
               must be structurally identical — stronger than isomorphic *)
            Graph.equal ind ref_ind && Isomorphism.isomorphic ind ref_ind)
          (Graph.nodes g));
    qcheck "touched = nodes whose ball meets the change set" (arb_spec ~max_nodes:12 ())
      (fun spec ->
        let g, r = both_cores spec in
        let n = Graph.card g in
        List.for_all
          (fun radius ->
            let changed = List.filteri (fun i _ -> i mod 3 = 0) (List.init n Fun.id) in
            Neighborhood.touched g ~radius changed
            = List.filter
                (fun u -> List.exists (fun v -> List.mem v (Ref_core.ball r ~radius u)) changed)
                (List.init n Fun.id))
          [ 0; 1; 2 ]);
    quick "large regime: sharded ball cache above the full-row threshold" (fun () ->
        (* 10^4 nodes > the 8192 default LPH_FULL_ROW_MAX: balls come
           from truncated BFS through the shard tables, distances from
           the bounded row memo / pair BFS *)
        let n = 10_000 in
        let g = Generators.cycle n in
        Alcotest.(check (list int)) "ball r2 @ 0" [ 0; 1; 2; n - 2; n - 1 ]
          (Neighborhood.ball g ~radius:2 0);
        Alcotest.(check (list int)) "ball r1 @ 5000" [ 4999; 5000; 5001 ]
          (Neighborhood.ball g ~radius:1 5000);
        check_int "distance across" (n / 2) (Neighborhood.distance g 0 (n / 2));
        check_int "distance near" 3 (Neighborhood.distance g 17 20);
        Alcotest.(check (list int)) "touched r1" [ 0; 1; 4999; 5000; 5001; n - 1 ]
          (Neighborhood.touched g ~radius:1 [ 0; 5000 ]);
        let ind = Neighborhood.r_neighbourhood g ~radius:2 42 in
        check_int "induced ball card" 5 (Graph.card ind.Neighborhood.subgraph);
        check_int "induced ball edges" 4 (Graph.num_edges ind.Neighborhood.subgraph));
  ]

let family_tests =
  [
    quick "torus is 4-regular" (fun () ->
        let g = Generators.torus ~rows:4 ~cols:5 () in
        check_int "card" 20 (Graph.card g);
        check_int "edges" 40 (Graph.num_edges g);
        check_bool "regular" true
          (Graph.fold_nodes g ~init:true ~f:(fun acc u -> acc && Graph.degree g u = 4));
        Alcotest.check_raises "rows >= 3"
          (Graph.Invalid "generators: torus needs rows, cols >= 3") (fun () ->
            ignore (Generators.torus ~rows:2 ~cols:5 ())));
    qcheck "erdos_renyi is connected at every p" QCheck.(pair (int_range 1 40) (int_bound 100))
      (fun (n, pct) ->
        let rng = Random.State.make [| n; pct |] in
        let g = Generators.erdos_renyi ~rng ~n ~p:(float_of_int pct /. 100.) () in
        (* construction enforces connectivity; check size and a BFS *)
        Graph.card g = n && Neighborhood.eccentricity g 0 < n);
    quick "erdos_renyi edge counts at the extremes" (fun () ->
        let rng = Random.State.make [| 11 |] in
        let tree = Generators.erdos_renyi ~rng ~n:50 ~p:0.0 () in
        (* p = 0: nothing sampled, rewiring bridges every node — a tree *)
        check_int "p=0 tree" 49 (Graph.num_edges tree);
        let full = Generators.erdos_renyi ~rng ~n:20 ~p:1.0 () in
        check_int "p=1 complete" 190 (Graph.num_edges full));
    qcheck "preferential attachment: connected, hub-heavy, right edge count"
      QCheck.(pair (int_range 2 40) (int_range 1 3))
      (fun (n, attach) ->
        let rng = Random.State.make [| n; attach; 3 |] in
        let g = Generators.preferential_attachment ~rng ~n ~attach () in
        let m0 = min n (attach + 1) in
        let expected =
          ref (m0 - 1)
        in
        for u = m0 to n - 1 do
          expected := !expected + min attach u
        done;
        Graph.card g = n && Graph.num_edges g = !expected);
    qcheck "expander: bounded degree, connected" QCheck.(pair (int_range 3 60) (int_range 1 3))
      (fun (n, cycles) ->
        let rng = Random.State.make [| n; cycles; 5 |] in
        let g = Generators.expander ~rng ~n ~cycles () in
        Graph.card g = n
        && Graph.max_degree g <= 2 * cycles
        && Neighborhood.eccentricity g 0 < n);
    quick "expander diameter beats the cycle" (fun () ->
        (* two random cycles on 256 nodes: diameter collapses from n/2
           to O(log n) levels — the expansion the family is for *)
        let rng = Random.State.make [| 42 |] in
        let g = Generators.expander ~rng ~n:256 ~cycles:2 () in
        check_bool "diameter < 32" true (Neighborhood.eccentricity g 0 < 32));
    qcheck "random_connected edge budget honoured" QCheck.(pair (int_range 1 30) (int_range 0 20))
      (fun (n, extra) ->
        let rng = Random.State.make [| n; extra; 9 |] in
        let g = Generators.random_connected ~rng ~n ~extra_edges:extra () in
        let max_possible = n * (n - 1) / 2 in
        Graph.num_edges g >= min (n - 1) max_possible
        && Graph.num_edges g <= min (n - 1 + extra) max_possible);
  ]

let suites =
  [
    ("graph:core", graph_tests);
    ("graph:equivalence", equivalence_tests);
    ("graph:families", family_tests);
    ("graph:generators", generator_tests);
    ("graph:neighborhood", neighborhood_tests);
    ("graph:identifiers", identifier_tests);
    ("graph:certificates", certificate_tests);
    ("graph:structural", structural_tests);
    ("graph:isomorphism", isomorphism_tests);
  ]
