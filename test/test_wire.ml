(* The wire layer: packed transport vs bit accounting.

   Two invariants are tested here. First, the packed codec and the
   paper-literal '0'/'1' expansion are interchangeable representations:
   round-trips agree and the bit length is exactly 8x the packed byte
   length, which is the charging shim every message cost relies on.
   Second — the load-bearing one — the runtime's observable behaviour
   is wire-mode independent: Runner.stats (charges, input sizes,
   message volumes) and all verdicts are byte-for-byte identical
   between the packed delta-flooding transport and the legacy bit
   transport of the seed runtime, under both sequential and parallel
   execution. *)

open Lph_core
open Helpers

let with_mode m f =
  let old = Codec.wire_mode () in
  Codec.set_wire_mode m;
  Fun.protect ~finally:(fun () -> Codec.set_wire_mode old) f

(* run [f] under LPH_JOBS=[j], forcing the team path even on tiny
   graphs via LPH_PAR_MIN=1; both variables are read per call, so
   setting and restoring them around [f] is race-free in this
   single-threaded test driver *)
let with_jobs j f =
  let old_jobs = Sys.getenv_opt "LPH_JOBS" in
  let old_min = Sys.getenv_opt "LPH_PAR_MIN" in
  Unix.putenv "LPH_JOBS" (string_of_int j);
  Unix.putenv "LPH_PAR_MIN" "1";
  Fun.protect
    ~finally:(fun () ->
      (* [putenv] cannot unset: restore the documented defaults when the
         variable was absent (harmless — both are re-read per call) *)
      Unix.putenv "LPH_JOBS"
        (match old_jobs with
        | Some v -> v
        | None -> string_of_int (min 4 (Domain.recommended_domain_count ())));
      Unix.putenv "LPH_PAR_MIN" (match old_min with Some v -> v | None -> "32"))
    f

let modes_agree scenario =
  List.for_all
    (fun j -> with_jobs j (fun () -> with_mode Codec.Packed scenario = with_mode Codec.Bits scenario))
    [ 1; 4 ]

let stats_repr (s : Runner.stats) =
  (s.Runner.rounds, s.Runner.charges, s.Runner.input_sizes, s.Runner.message_bytes)

let run_repr algo g ~ids ?cert_list () =
  let r = Runner.run algo g ~ids ?cert_list () in
  (stats_repr r.Runner.stats, Graph.labels r.Runner.output)

let graph_repr g = (Graph.labels g, Graph.edges g)

(* ------------------------------------------------------------------ *)
(* Codec: packed vs bits representations *)

let sample_codec =
  Codec.(pair (list string) (triple int (option bool) string))

let gen_sample =
  QCheck.Gen.(
    let bits = Helpers.gen_bitstring ~max_len:6 () in
    let any = string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 8) in
    pair (list_size (int_bound 4) bits) (triple (int_bound 1_000_000) (option bool) any))

let arb_sample =
  QCheck.make
    ~print:(fun (l, (n, b, s)) ->
      Printf.sprintf "([%s], (%d, %s, %S))" (String.concat ";" l) n
        (match b with None -> "None" | Some b -> string_of_bool b)
        s)
    gen_sample

let codec_tests =
  [
    qcheck ~count:200 "packed and bit codecs round-trip all combinators" arb_sample (fun v ->
        Codec.decode sample_codec (Codec.encode sample_codec v) = v
        && Codec.decode_bits sample_codec (Codec.encode_bits sample_codec v) = v);
    qcheck ~count:200 "bit length is exactly 8x the packed length" arb_sample (fun v ->
        let packed = Codec.encode sample_codec v and bits = Codec.encode_bits sample_codec v in
        String.length bits = 8 * String.length packed
        && Codec.bits_length sample_codec v = String.length bits
        && Codec.encoded_length sample_codec v = String.length packed);
    qcheck ~count:200 "int_length matches the encoder"
      QCheck.(make ~print:string_of_int Gen.(frequency [ (3, int_bound 100_000); (1, map abs int) ]))
      (fun n -> Codec.int_length n = Codec.encoded_length Codec.int n);
    quick "wire mode follows set_wire_mode" (fun () ->
        let v = ([ "01" ], (5, Some true, "x")) in
        with_mode Codec.Packed (fun () ->
            check_bool "packed" true (Codec.encode_wire sample_codec v = Codec.encode sample_codec v);
            check_int "wire_bits" (8 * String.length (Codec.encode sample_codec v))
              (Codec.wire_bits (Codec.encode_wire sample_codec v)));
        with_mode Codec.Bits (fun () ->
            check_bool "bits" true (Codec.encode_wire sample_codec v = Codec.encode_bits sample_codec v);
            check_int "wire_bits" (String.length (Codec.encode_bits sample_codec v))
              (Codec.wire_bits (Codec.encode_wire sample_codec v))));
  ]

let int_boundary_tests =
  [
    quick "boundary values round-trip" (fun () ->
        List.iter
          (fun n -> check_int (string_of_int n) n (Codec.decode Codec.int (Codec.encode Codec.int n)))
          [ 0; 1; 127; 128; 16383; 16384; max_int - 1; max_int ]);
    quick "truncated input is rejected" (fun () ->
        Alcotest.check_raises "empty"
          (Error.Error (Error.Decode_error { what = "Codec.int"; detail = "truncated" }))
          (fun () -> ignore (Codec.decode Codec.int ""));
        Alcotest.check_raises "dangling continuation"
          (Error.Error (Error.Decode_error { what = "Codec.int"; detail = "truncated" }))
          (fun () -> ignore (Codec.decode Codec.int "\x80")));
    quick "a chunk spilling past bit 62 is rejected" (fun () ->
        (* 9th byte lands at shift 56; max_int lsr 56 = 63, so chunk 64
           would overflow into the sign bit *)
        let s = String.make 8 '\x80' ^ "\x40" in
        Alcotest.check_raises "chunk overflow"
          (Error.Error (Error.Decode_error { what = "Codec.int"; detail = "overflow" }))
          (fun () -> ignore (Codec.decode Codec.int s));
        (* ...while chunk 63 at the same shift is max_int and fine *)
        check_int "max_int" max_int (Codec.decode Codec.int (String.make 8 '\xff' ^ "\x3f")));
    quick "a tenth continuation byte is rejected" (fun () ->
        let s = String.make 9 '\x80' ^ "\x00" in
        Alcotest.check_raises "shift overflow"
          (Error.Error (Error.Decode_error { what = "Codec.int"; detail = "overflow" }))
          (fun () -> ignore (Codec.decode Codec.int s)));
  ]

(* ------------------------------------------------------------------ *)
(* Runtime equivalence: packed delta-flooding vs the seed's bit wire *)

let equivalence_tests =
  [
    qcheck ~count:15 "gather: balls and stats are wire-mode independent"
      (arb_graph ~max_nodes:7 ())
      (fun g ->
        let ids = global_ids g in
        List.for_all
          (fun radius ->
            modes_agree (fun () ->
                let balls = Gather.collect ~radius g ~ids () in
                let decider =
                  Gather.algo ~name:"parity" ~radius ~levels:0 ~decide:(fun _ b ->
                      List.length b.Gather.entries mod 2 = 0)
                in
                (balls, run_repr decider g ~ids ())))
          [ 1; 2 ]);
    qcheck ~count:10 "eulerian reduction: image and stats are wire-mode independent"
      (arb_graph ~max_nodes:6 ())
      (fun g ->
        let ids = global_ids g in
        modes_agree (fun () ->
            ( graph_repr (Cluster.apply Eulerian_red.reduction g ~ids),
              stats_repr (Cluster.stats Eulerian_red.reduction g ~ids) )));
    qcheck ~count:10 "eulerian simulation: verdicts and stats are wire-mode independent"
      (arb_graph ~max_nodes:6 ())
      (fun g ->
        let ids = global_ids g in
        let sim () =
          Simulate.through_reduction Eulerian_red.reduction ~inner:Candidates.eulerian_decider ()
        in
        modes_agree (fun () -> run_repr (sim ()) g ~ids ()));
    qcheck ~count:8 "cook-levin reduction: image and stats are wire-mode independent"
      (arb_graph ~max_nodes:5 ())
      (fun g ->
        let ids = global_ids g in
        let red () = Cook_levin.reduction Graph_formulas.all_selected in
        modes_agree (fun () ->
            ( graph_repr (Cluster.apply (red ()) g ~ids),
              stats_repr (Cluster.stats (red ()) g ~ids) )));
    quick "lemma 8: game values are wire-mode independent" (fun () ->
        let below k =
          Restrictor.per_node ~name:(Printf.sprintf "below-%d" k) (fun _ctx cert ->
              Bitstring.to_int cert < k && String.length cert <= 2)
        in
        let scenario () =
          let verifier = Arbiter.of_local_algo ~id_radius:2 (Candidates.color_verifier 3) in
          let raw_universe = Game.bitstring_universe ~max_len:2 in
          List.map
            (fun g ->
              let ids = global_ids g in
              let restricted =
                Restrictor.restricted_game ~first:Game.Eve ~arbiter:verifier
                  ~restrictors:[ below 3 ] g ~ids ~universes:[ raw_universe ]
              in
              let converted =
                Restrictor.lemma8_convert ~restrictors:[ below 3 ] ~first:Game.Eve verifier
              in
              let permissive = Game.sigma_accepts converted g ~ids ~universes:[ raw_universe ] in
              (restricted, permissive))
            [ Generators.path 3; Generators.cycle 3 ]
        in
        check_bool "agree" true (modes_agree scenario));
  ]

let suites =
  [
    ("wire:codec", codec_tests);
    ("wire:int-hardening", int_boundary_tests);
    ("wire:equivalence", equivalence_tests);
  ]
