(* lph-loadgen: replay a deterministic mixed query stream against a
   running serve.exe daemon and report throughput and latency tails.

   usage: loadgen.exe --socket PATH [--requests N] [--connections C]
                      [--wire packed|bits|both] [--check] [--json]

   The stream cycles through a fixed template mix (SAT and CEGAR games,
   pruned search, certificate checks) over the protocol's closed graph
   catalog, so two runs with the same arguments issue byte-identical
   requests.  With [--check] every answer is compared against a local
   single-process [Game]/arbiter computation and any mismatch makes the
   exit status 1 — this is the "answers match batch mode" oracle used by
   CI's serve-smoke job. *)

open Lph_core

let usage =
  "usage: loadgen.exe --socket PATH [--requests N] [--connections C] \
   [--wire packed|bits|both] [--check] [--json]"

let socket = ref ""
let requests = ref 200
let connections = ref 4
let wire_arg = ref "both"
let check = ref false
let json = ref false

(* The template mix: (engine, property, graph, query).  Kept small and
   closed so --check can afford to recompute every distinct template
   once locally. *)
let templates =
  let open Serve_protocol in
  let proper_2col n =
    [ Array.init n (fun v -> if v mod 2 = 0 then "0" else "1") ]
  in
  [
    (`Sat, Coloring 3, Cycle 12, Accepts Game.Eve);
    (`Cegar, Coloring 3, Cycle 12, Accepts Game.Eve);
    (`Sat, Coloring 2, Cycle 9, Accepts Game.Adam);
    (`Cegar, Robust_two_col, Cycle 6, Accepts Game.Eve);
    (`Pruned, Coloring 2, Cycle 8, Accepts Game.Eve);
    (`Sat, Coloring 3, Complete 4, Accepts Game.Eve);
    (`Auto, Coloring 2, Cycle 10, Check (proper_2col 10));
    (`Cegar, Coloring 3, Path 7, Accepts Game.Eve);
  ]

let request_of_template i (engine, property, graph, query) =
  { Serve_protocol.id = i; engine; property; graph; query }

(* Local oracle: one answer per template, computed in-process exactly
   the way batch mode (bin/lph.ml game subcommands) would. *)
let local_answer (engine, property, graph, query) =
  let open Serve_protocol in
  let g = build_graph graph in
  let a = arbiter property in
  let ids = Identifiers.make_global g in
  match query with
  | Accepts player ->
      let universes = universes property in
      let accepts =
        match player with
        | Game.Eve -> Game.sigma_accepts ~engine a g ~ids ~universes
        | Game.Adam -> Game.pi_accepts ~engine a g ~ids ~universes
      in
      accepts
  | Check certs -> (a.Arbiter.accepts g ~ids ~certs : bool)

let percentile sorted p =
  if Array.length sorted = 0 then 0.
  else
    let i = int_of_float (ceil (p /. 100. *. float (Array.length sorted))) - 1 in
    sorted.(max 0 (min (Array.length sorted - 1) i))

let () =
  Arg.parse
    [
      ("--socket", Arg.Set_string socket, "PATH daemon socket (required)");
      ("--requests", Arg.Set_int requests, "N total requests to issue (default 200)");
      ("--connections", Arg.Set_int connections, "C concurrent client connections (default 4)");
      ("--wire", Arg.Set_string wire_arg, "MODE packed|bits|both (default both)");
      ("--check", Arg.Set check, " verify every answer against a local computation");
      ("--json", Arg.Set json, " machine-readable one-line summary");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage;
  if !socket = "" then begin
    prerr_endline usage;
    exit 2
  end;
  let wires =
    match !wire_arg with
    | "packed" -> [| Codec.Packed |]
    | "bits" -> [| Codec.Bits |]
    | "both" -> [| Codec.Packed; Codec.Bits |]
    | w -> prerr_endline ("loadgen: unknown wire mode " ^ w); exit 2
  in
  let n = max 1 !requests and conns = max 1 !connections in
  let oracle =
    if !check then List.map (fun t -> local_answer t) templates else []
  in
  let mismatches = Atomic.make 0 in
  let errors = Atomic.make 0 in
  let hits = Atomic.make 0 in
  let lat_mutex = Mutex.create () in
  let latencies = ref [] in
  let run_connection c =
    let wire = wires.(c mod Array.length wires) in
    let client = Serve_client.connect ~wire ~socket:!socket () in
    let mine = ref [] in
    (* request ids are globally unique: connection c owns i ≡ c (mod conns) *)
    let i = ref c in
    while !i < n do
      let t = List.nth templates (!i mod List.length templates) in
      let req = request_of_template !i t in
      let t0 = Unix.gettimeofday () in
      let resp = Serve_client.request client req in
      let dt = (Unix.gettimeofday () -. t0) *. 1e3 in
      mine := dt :: !mine;
      if resp.Serve_protocol.id <> req.Serve_protocol.id then begin
        Atomic.incr mismatches;
        Printf.eprintf "loadgen: response id %d for request %d\n%!"
          resp.Serve_protocol.id req.Serve_protocol.id
      end;
      if resp.Serve_protocol.cache_hit then Atomic.incr hits;
      (match resp.Serve_protocol.outcome with
      | Ok answer ->
          if !check then begin
            let want = List.nth oracle (!i mod List.length templates) in
            if answer <> want then begin
              Atomic.incr mismatches;
              Printf.eprintf "loadgen: request %d answered %b, batch mode says %b\n%!" !i
                answer want
            end
          end
      | Error e ->
          Atomic.incr errors;
          Printf.eprintf "loadgen: request %d failed: %s\n%!" !i (Error.to_string e));
      i := !i + conns
    done;
    Serve_client.close client;
    Mutex.protect lat_mutex (fun () -> latencies := List.rev_append !mine !latencies)
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init conns (fun c -> Thread.create run_connection c) in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let lat = Array.of_list !latencies in
  Array.sort compare lat;
  let issued = Array.length lat in
  let qps = float issued /. (if wall > 0. then wall else 1e-9) in
  let p50 = percentile lat 50. and p95 = percentile lat 95. and p99 = percentile lat 99. in
  if !json then
    Printf.printf
      "{\"requests\": %d, \"connections\": %d, \"wire\": \"%s\", \"wall_s\": %.4f, \
       \"qps\": %.1f, \"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f, \
       \"cache_hits\": %d, \"errors\": %d, \"mismatches\": %d}\n"
      issued conns !wire_arg wall qps p50 p95 p99 (Atomic.get hits) (Atomic.get errors)
      (Atomic.get mismatches)
  else begin
    Printf.printf "loadgen: %d requests over %d connections (%s wire) in %.3f s — %.1f req/s\n"
      issued conns !wire_arg wall qps;
    Printf.printf "loadgen: latency p50 %.3f ms, p95 %.3f ms, p99 %.3f ms; %d cache hits\n" p50
      p95 p99 (Atomic.get hits);
    if !check then
      Printf.printf "loadgen: %d mismatches vs batch mode, %d errors\n" (Atomic.get mismatches)
        (Atomic.get errors)
  end;
  if Atomic.get mismatches > 0 || (!check && Atomic.get errors > 0) then exit 1
