(* lph-fuzz: seeded soundness campaigns against the fault-injection
   layer (run in CI; see DESIGN.md, "Fault model").

   Three campaigns, all deterministic given the base spec:

   - certificate: flipped and forged certificates attack arbiters on
     known no-instances (K4 vs 3-colouring, an odd cycle vs
     2-colouring, a contradictory Boolean graph vs SAT-GRAPH). No
     tampering may flip a no-instance to accept, and the fault-free
     game must reject on every engine.
   - wire: corrupted and truncated transport bytes are decoded in both
     wire modes. Every failure must be the typed
     [Error.Decode_error] — a raw [Failure _] or [Invalid_argument _]
     is a violation.
   - runner: whole runs under all-kinds plans on random graphs.
     [Runner.run_outcome] must return [Completed] (then the result
     must be identical to the fault-free run) or [Faulted] (then the
     report must explain itself); a zero-rate twin plan must be a
     provable no-op.
   - server: the certificate attacks again, but delivered as [Check]
     wire requests through a live daemon (lib/serve), alternating wire
     modes. No tampering may flip a reject to an accept across the
     protocol boundary, and tampered raw frames must draw well-formed
     responses or a clean close — never garbled output.

   Usage: fuzz.exe [scenarios] (default 600, split across campaigns).
   [LPH_FAULTS] seeds the base plan (default "all@0.3:1"); every
   violation prints the offending scenario's replay spec. *)

open Lph_core

let usage () =
  prerr_endline "usage: fuzz.exe [scenarios]";
  exit 2

let scenarios =
  match Sys.argv with
  | [| _ |] -> 600
  | [| _; n |] -> ( match int_of_string_opt n with Some n when n > 0 -> n | _ -> usage ())
  | _ -> usage ()

let base =
  match Fault_plan.of_env () with
  | Some p -> p
  | None -> Fault_plan.make ~rate:0.3 ~kinds:Fault_plan.all_kinds 1

(* Engine-internal Runner calls (game engines, reductions) must stay
   fault-free — and so must their verdict caches. Scenarios pass their
   plan explicitly instead of going through the ambient hook. *)
let () = Runner.set_fault_plan None

let scenario_seed i = (Fault_plan.seed base * 1_000_003) + i

let violations = ref 0

let complain fmt =
  Printf.ksprintf
    (fun s ->
      incr violations;
      Printf.printf "VIOLATION: %s\n%!" s)
    fmt

(* ------------------------------------------------------------------ *)
(* Certificate campaign *)

let fixtures =
  let k4 = Generators.complete 4 in
  let c5 = Generators.cycle 5 in
  let bg =
    Boolean_graph.make (Generators.path 2)
      [| Bool_formula.Var "x"; Bool_formula.Not (Bool_formula.Var "x") |]
  in
  [
    ( "3col-K4",
      k4,
      Arbiter.of_local_algo ~id_radius:2 (Candidates.color_verifier 3),
      [ Candidates.color_universe 3 ],
      [ Array.init 4 (fun u -> Bitstring.of_int (u mod 3)) ] );
    ( "2col-C5",
      c5,
      Arbiter.of_local_algo ~id_radius:2 (Candidates.color_verifier 2),
      [ Candidates.color_universe 2 ],
      [ Array.init 5 (fun u -> Bitstring.of_int (u mod 2)) ] );
    ( "sat-graph-x-notx",
      bg,
      Arbiter.of_local_algo ~id_radius:2 Candidates.sat_graph_verifier,
      [ Candidates.sat_graph_universe bg ],
      [ [| "1"; "0" |] ] );
    (* a Σ2 no-instance: the odd cycle loses the robust-2col game
       whatever the claim and challenge — tampering either level must
       never produce an all-accepting pair *)
    ( "sigma2-2col-C5",
      c5,
      Arbiter.of_local_algo ~id_radius:1 Candidates.robust_two_col_verifier,
      [ Candidates.color_universe 2; Candidates.color_universe 2 ],
      [ Array.init 5 (fun u -> Bitstring.of_int (u mod 2)); Array.init 5 (fun u -> Bitstring.of_int (u mod 2)) ] );
  ]

let engines =
  [ ("exhaustive", `Exhaustive); ("pruned", `Pruned); ("sat", `Sat); ("cegar", `Cegar) ]

let check_no_instances () =
  List.iter
    (fun (name, g, a, universes, _) ->
      let ids = Identifiers.make_global g in
      List.iter
        (fun (ename, e) ->
          if Game.sigma_accepts ~engine:e a g ~ids ~universes then
            complain "fixture %s accepted by engine %s without faults" name ename)
        engines)
    fixtures

let cert_campaign n =
  let fired = ref 0 in
  for i = 0 to n - 1 do
    let name, g, a, _, basec = List.nth fixtures (i mod List.length fixtures) in
    let plan =
      Fault_plan.make ~rate:0.9
        ~kinds:[ Fault_plan.Cert_flip; Fault_plan.Cert_forge ]
        (scenario_seed i)
    in
    let certs =
      List.map
        (Array.mapi (fun u c ->
             let c', f = Fault_plan.tamper_cert plan ~node:u c in
             if f <> None then incr fired;
             c'))
        basec
    in
    let ids = Identifiers.make_global g in
    match a.Arbiter.accepts g ~ids ~certs with
    | true -> complain "accept-flip on %s under %s" name (Fault_plan.to_spec plan)
    | false -> ()
    | exception e ->
        complain "escape on %s under %s: %s" name (Fault_plan.to_spec plan)
          (Printexc.to_string e)
  done;
  !fired

(* ------------------------------------------------------------------ *)
(* Wire campaign *)

let wire_codec = Codec.(pair (list int) (pair string bool))

let with_mode m f =
  let saved = Codec.wire_mode () in
  Codec.set_wire_mode m;
  Fun.protect ~finally:(fun () -> Codec.set_wire_mode saved) f

let wire_campaign n =
  let fired = ref 0 and typed = ref 0 in
  for i = 0 to n - 1 do
    let seed = scenario_seed (1_000_000 + i) in
    let rng = Random.State.make [| seed |] in
    let value =
      ( List.init (Random.State.int rng 5) (fun _ -> Random.State.int rng 10_000),
        ( String.init (Random.State.int rng 8) (fun _ -> if Random.State.bool rng then '1' else '0'),
          Random.State.bool rng ) )
    in
    (* drop outranks the other wire kinds inside a plan, so rotate
       single-kind plans to actually exercise truncation and
       corruption at rate 1 *)
    let kind =
      match i mod 3 with 0 -> Fault_plan.Truncate | 1 -> Fault_plan.Corrupt | _ -> Fault_plan.Drop
    in
    let plan = Fault_plan.make ~rate:1.0 ~kinds:[ kind ] seed in
    List.iter
      (fun mode ->
        with_mode mode (fun () ->
            let w = Codec.encode_wire wire_codec value in
            match Fault_plan.tamper_wire plan ~round:1 ~src:0 ~dst:1 w with
            | None, _ -> incr fired (* dropped *)
            | Some w', f -> (
                if f <> None then incr fired;
                match Codec.decode_wire wire_codec w' with
                | _ -> ()
                | exception Error.Error (Error.Decode_error _) -> incr typed
                | exception e ->
                    complain "untyped escape decoding %S under %s: %s" w'
                      (Fault_plan.to_spec plan) (Printexc.to_string e))))
      [ Codec.Packed; Codec.Bits ]
  done;
  (!fired, !typed)

(* ------------------------------------------------------------------ *)
(* Runner campaign *)

let run_repr (r : Runner.result) =
  (Graph.labels r.Runner.output, r.Runner.stats.Runner.rounds, r.Runner.stats.Runner.charges)

let runner_campaign n =
  let fired = ref 0 and faulted = ref 0 in
  for i = 0 to n - 1 do
    let seed = scenario_seed (2_000_000 + i) in
    let rng = Random.State.make [| seed |] in
    let g =
      Generators.random_connected ~rng
        ~n:(2 + Random.State.int rng 6)
        ~extra_edges:(Random.State.int rng 3) ~label_bits:1 ()
    in
    let ids = Identifiers.make_global g in
    let algo =
      if i mod 2 = 0 then Candidates.color_verifier 3 else Candidates.constant_label_decider
    in
    let certs = Array.init (Graph.card g) (fun u -> Bitstring.of_int (u mod 3)) in
    let base_run = Runner.run algo g ~ids ~cert_list:certs () in
    let plan = Fault_plan.make ~rate:(Fault_plan.rate base) ~kinds:(Fault_plan.kinds base) seed in
    (match Runner.run_outcome ~round_limit:100 ~faults:plan algo g ~ids ~cert_list:certs () with
    | Runner.Completed r ->
        if run_repr r <> run_repr base_run then
          complain "Completed differs from the fault-free run under %s" (Fault_plan.to_spec plan)
    | Runner.Faulted rep ->
        incr faulted;
        fired := !fired + List.length rep.Runner.faults;
        if rep.Runner.faults = [] && rep.Runner.error = None && rep.Runner.diverged = None then
          complain "empty fault report under %s" (Fault_plan.to_spec plan)
    | Runner.Degraded _ ->
        complain "Degraded outcome without quorum mode under %s" (Fault_plan.to_spec plan)
    | exception e ->
        complain "untyped escape from run_outcome under %s: %s" (Fault_plan.to_spec plan)
          (Printexc.to_string e));
    (* the zero-rate twin: an installed plan that never fires must be a
       provable no-op *)
    let noop = Fault_plan.make ~rate:0.0 ~kinds:Fault_plan.all_kinds seed in
    match Runner.run_outcome ~faults:noop algo g ~ids ~cert_list:certs () with
    | Runner.Completed r ->
        if run_repr r <> run_repr base_run then
          complain "zero-rate plan changed the run under %s" (Fault_plan.to_spec noop)
    | Runner.Faulted _ | Runner.Degraded _ ->
        complain "zero-rate plan reported faults under %s" (Fault_plan.to_spec noop)
  done;
  (!fired, !faulted)

(* ------------------------------------------------------------------ *)
(* Server campaign *)

(* The certificate fixtures that name catalog entries, as (name,
   property, graph spec, base certs). sat-graph-x-notx carries its own
   Boolean payload, which the closed wire catalog cannot express, so
   the in-process certificate campaign keeps sole custody of it. *)
let server_fixtures =
  [
    ( "3col-K4",
      Serve_protocol.Coloring 3,
      Serve_protocol.Complete 4,
      [ Array.init 4 (fun u -> Bitstring.of_int (u mod 3)) ] );
    ( "2col-C5",
      Serve_protocol.Coloring 2,
      Serve_protocol.Cycle 5,
      [ Array.init 5 (fun u -> Bitstring.of_int (u mod 2)) ] );
    ( "sigma2-2col-C5",
      Serve_protocol.Robust_two_col,
      Serve_protocol.Cycle 5,
      [
        Array.init 5 (fun u -> Bitstring.of_int (u mod 2));
        Array.init 5 (fun u -> Bitstring.of_int (u mod 2));
      ] );
  ]

(* Every response frame the server sends before closing; raises the
   typed [Decode_error] if the server itself emits a garbled frame. *)
let read_all_frames fd =
  let rec loop acc =
    match Serve_protocol.read_frame fd with
    | None -> List.rev acc
    | Some (wire, payload) ->
        loop (Serve_protocol.parse ~wire Serve_protocol.response_codec payload :: acc)
  in
  loop []

let server_campaign n =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "lph-fuzz-%d.sock" (Unix.getpid ()))
  in
  let server = Serve_server.start ~socket () in
  Fun.protect ~finally:(fun () -> Serve_server.stop server) @@ fun () ->
  let clients =
    [|
      Serve_client.connect ~wire:Codec.Packed ~socket ();
      Serve_client.connect ~wire:Codec.Bits ~socket ();
    |]
  in
  Fun.protect ~finally:(fun () -> Array.iter Serve_client.close clients) @@ fun () ->
  let fired = ref 0 and frames = ref 0 in
  for i = 0 to n - 1 do
    let name, property, spec, basec =
      List.nth server_fixtures (i mod List.length server_fixtures)
    in
    let plan =
      Fault_plan.make ~rate:0.9
        ~kinds:[ Fault_plan.Cert_flip; Fault_plan.Cert_forge ]
        (scenario_seed (3_000_000 + i))
    in
    let certs =
      List.map
        (Array.mapi (fun u c ->
             let c', f = Fault_plan.tamper_cert plan ~node:u c in
             if f <> None then incr fired;
             c'))
        basec
    in
    let req =
      { Serve_protocol.id = i; engine = `Auto; property; graph = spec; query = Serve_protocol.Check certs }
    in
    (match Serve_client.request clients.(i mod 2) req with
    | { Serve_protocol.outcome = Ok true; _ } ->
        complain "accept-flip across the protocol boundary on %s under %s" name
          (Fault_plan.to_spec plan)
    | { Serve_protocol.outcome = Ok false; _ } -> ()
    | { Serve_protocol.outcome = Error e; _ } ->
        (* cert tampering preserves the certificate shape, so the
           daemon owes a verdict, not a refusal *)
        complain "typed refusal instead of a verdict on %s under %s: %s" name
          (Fault_plan.to_spec plan) (Error.to_string e)
    | exception e ->
        complain "escape across the protocol boundary on %s under %s: %s" name
          (Fault_plan.to_spec plan) (Printexc.to_string e));
    (* every few scenarios attack the frame itself on a throwaway
       connection: whatever the corruption, the daemon must answer with
       well-formed frames or close cleanly — never garbled output *)
    if i mod 5 = 0 then begin
      let wire = if i land 1 = 0 then Codec.Packed else Codec.Bits in
      let raw = Serve_protocol.frame ~wire Serve_protocol.request_codec req in
      let wire_plan =
        Fault_plan.make ~rate:1.0
          ~kinds:[ (if i mod 10 = 0 then Fault_plan.Corrupt else Fault_plan.Truncate) ]
          (scenario_seed (4_000_000 + i))
      in
      match Fault_plan.tamper_wire wire_plan ~round:1 ~src:0 ~dst:1 raw with
      | None, _ -> ()
      | Some raw', _ -> (
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          @@ fun () ->
          Unix.connect fd (Unix.ADDR_UNIX socket);
          let len = String.length raw' in
          let written = ref 0 in
          while !written < len do
            written := !written + Unix.write_substring fd raw' !written (len - !written)
          done;
          (* our EOF ends any partial frame, so the server either
             answers what it could decode or closes the connection *)
          Unix.shutdown fd Unix.SHUTDOWN_SEND;
          match read_all_frames fd with
          | rs -> frames := !frames + List.length rs
          | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
              (* the daemon closed with our bytes still unread — a
                 reset, but a deliberate close, not garbled output *)
              ()
          | exception Error.Error (Error.Decode_error _) ->
              complain "daemon emitted a garbled frame under %s" (Fault_plan.to_spec wire_plan)
          | exception e ->
              complain "untyped escape reading tampered-frame responses under %s: %s"
                (Fault_plan.to_spec wire_plan) (Printexc.to_string e))
    end
  done;
  (!fired, !frames)

(* ------------------------------------------------------------------ *)
(* Crash-stop campaign through the live daemon *)

(* Crash-stop scenarios under quorum mode, interleaved with live daemon
   traffic. Each scenario crash-stops up to f nodes of a random run
   ([Runner.run_outcome ~quorum:f] with a compiled [Crash_stop] model
   plan): the outcome must be typed, and a [Degraded] answer's promise
   is re-audited against the fault-free twin. Between the faulted runs
   the same process drives [Check] requests through a live daemon with
   client retry enabled — degradation in the compute fabric must never
   bleed into the serve path: the daemon owes the fault-free verdict,
   every time, with no refusals and no garbled frames. *)
let crash_campaign n =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "lph-fuzz-crash-%d.sock" (Unix.getpid ()))
  in
  let server = Serve_server.start ~socket () in
  Fun.protect ~finally:(fun () -> Serve_server.stop server) @@ fun () ->
  let client = Serve_client.connect ~wire:Codec.Packed ~retries:2 ~seed:1 ~socket () in
  Fun.protect ~finally:(fun () -> Serve_client.close client) @@ fun () ->
  let degraded = ref 0 and faulted = ref 0 in
  for i = 0 to n - 1 do
    let seed = scenario_seed (5_000_000 + i) in
    let rng = Random.State.make [| seed |] in
    let g =
      Generators.random_connected ~rng
        ~n:(3 + Random.State.int rng 5)
        ~extra_edges:(Random.State.int rng 3) ~label_bits:1 ()
    in
    let ids = Identifiers.make_global g in
    let algo =
      if i mod 2 = 0 then Candidates.eulerian_decider else Candidates.constant_label_decider
    in
    let f = 1 + (i mod 2) in
    let model = Fault_model.make ~rate:0.8 ~f Fault_model.Crash_stop in
    let plan = Fault_model.compile model ~n:(Graph.card g) ~seed in
    (match Runner.run_outcome ~round_limit:100 ~faults:plan ~quorum:f algo g ~ids () with
    | Runner.Completed _ -> ()
    | Runner.Degraded d ->
        incr degraded;
        if List.length d.Runner.crashed > f then
          complain "Degraded with %d crashes over quorum %d under %s"
            (List.length d.Runner.crashed) f (Fault_plan.to_spec plan);
        let free = Runner.run algo g ~ids () in
        List.iter
          (fun u ->
            if
              (not (List.mem u d.Runner.crashed))
              && Graph.label free.Runner.output u
                 <> Graph.label d.Runner.deg_result.Runner.output u
            then
              complain "Degraded survivor %d diverges from the fault-free twin under %s" u
                (Fault_plan.to_spec plan))
          (Graph.nodes g)
    | Runner.Faulted rep ->
        incr faulted;
        if rep.Runner.faults = [] && rep.Runner.error = None && rep.Runner.diverged = None then
          complain "empty crash fault report under %s" (Fault_plan.to_spec plan)
    | exception e ->
        complain "untyped escape from a crash-stop run under %s: %s" (Fault_plan.to_spec plan)
          (Printexc.to_string e));
    (* the serve path, same process, same instant: crash degradation in
       the runner must not perturb daemon answers *)
    let name, property, spec, certs =
      List.nth server_fixtures (i mod List.length server_fixtures)
    in
    let req =
      { Serve_protocol.id = i; engine = `Auto; property; graph = spec;
        query = Serve_protocol.Check certs }
    in
    match Serve_client.request ~retries:2 ~seed:i client req with
    | { Serve_protocol.outcome = Ok false; _ } -> ()
    | { Serve_protocol.outcome = Ok true; _ } ->
        complain "daemon flipped the %s verdict during the crash campaign" name
    | { Serve_protocol.outcome = Error e; _ } ->
        complain "daemon refused %s during the crash campaign: %s" name (Error.to_string e)
    | exception e ->
        complain "escape across the protocol boundary on %s during the crash campaign: %s" name
          (Printexc.to_string e)
  done;
  (!degraded, !faulted)

(* ------------------------------------------------------------------ *)

let () =
  let na = scenarios / 5 in
  let nb = scenarios / 5 in
  let nc = scenarios / 5 in
  let nd = scenarios / 5 in
  let ne = scenarios - na - nb - nc - nd in
  Printf.printf "lph-fuzz: %d scenarios, base plan %s\n%!" scenarios (Fault_plan.to_spec base);
  check_no_instances ();
  let cert_fired = cert_campaign na in
  let wire_fired, wire_typed = wire_campaign nb in
  let run_fired, run_faulted = runner_campaign nc in
  let srv_fired, srv_frames = server_campaign nd in
  let crash_degraded, crash_faulted = crash_campaign ne in
  Printf.printf "  certificate: %4d scenarios, %4d tampers, 0 accept-flips allowed\n" na cert_fired;
  Printf.printf "  wire:        %4d scenarios, %4d tampers, %4d typed rejections\n" nb wire_fired
    wire_typed;
  Printf.printf "  runner:      %4d scenarios, %4d faults fired, %4d Faulted outcomes\n" nc
    run_fired run_faulted;
  Printf.printf "  server:      %4d scenarios, %4d tampers, %4d tampered-frame responses\n" nd
    srv_fired srv_frames;
  Printf.printf "  crash-stop:  %4d scenarios, %4d Degraded, %4d Faulted, daemon answers checked\n"
    ne crash_degraded crash_faulted;
  if !violations = 0 then Printf.printf "OK: no accept-flips, no untyped escapes\n"
  else begin
    Printf.printf "FAILED: %d violation(s)\n" !violations;
    exit 1
  end
