(* lph-serve: the hierarchy-as-a-service daemon.

   Binds a Unix-domain socket and answers game/classification queries
   over the length-prefixed wire protocol (lib/serve), sharing compiled
   SAT/CEGAR instances and neighbourhood memos across all requests and
   connections, LRU-bounded by LPH_SERVE_CACHE_MB.

   usage: serve.exe --socket PATH [--cache-mb N] [--quiet]

   Runs until SIGINT/SIGTERM; prints a stats line on shutdown. *)

open Lph_core

let usage = "usage: serve.exe --socket PATH [--cache-mb N] [--quiet]"

let socket = ref ""
let cache_mb = ref 0
let quiet = ref false

let () =
  Arg.parse
    [
      ("--socket", Arg.Set_string socket, "PATH Unix-domain socket to listen on (required)");
      ("--cache-mb", Arg.Set_int cache_mb, "N entry-cache bound in MB (default LPH_SERVE_CACHE_MB or 256)");
      ("--quiet", Arg.Set quiet, " no startup/shutdown chatter");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage;
  if !socket = "" then begin
    prerr_endline usage;
    exit 2
  end;
  let server =
    Serve_server.start
      ?cache_mb:(if !cache_mb > 0 then Some !cache_mb else None)
      ~socket:!socket ()
  in
  if not !quiet then
    Printf.printf "lph-serve: listening on %s (cache %d MB, %d jobs)\n%!" !socket
      (Serve_scheduler.cap_bytes (Serve_server.scheduler server) / (1024 * 1024))
      (Parallel.jobs ());
  (* A handler can only set a flag: it runs at a safepoint, and every
     other thread here blocks in syscalls, so the main thread polls. *)
  let stop_now = Atomic.make false in
  let request_stop _ = Atomic.set stop_now true in
  List.iter
    (fun s -> try Sys.set_signal s (Sys.Signal_handle request_stop) with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigint; Sys.sigterm ];
  while not (Atomic.get stop_now) do
    Thread.delay 0.2
  done;
  let s = Serve_server.stats server in
  Serve_server.stop server;
  if not !quiet then
    Printf.printf
      "lph-serve: stopped after %d requests in %d batches (%d hits, %d misses, %d evictions, %d resident)\n%!"
      s.Serve_scheduler.requests s.Serve_scheduler.batches s.Serve_scheduler.cache_hits
      s.Serve_scheduler.cache_misses s.Serve_scheduler.evictions s.Serve_scheduler.entries
