(* Static analyzer entry point: runs every lint rule over the built-in
   registry (or the seeded violation fixtures) and reports typed
   diagnostics.

   Exit codes: 0 = no error-severity finding, 1 = at least one error,
   2 = usage / internal failure. CI runs both `lint.exe --json` (must
   exit 0) and `lint.exe --fixtures` (must exit 1). *)

module Lint = Lph_core.Lint

let usage () =
  prerr_endline
    "usage: lint.exe [--json] [--fixtures]\n\
    \  --json      emit the lph-lint-1 JSON report instead of text\n\
    \  --fixtures  analyse the seeded violation fixtures instead of the registry";
  exit 2

let () =
  let json = ref false and fixtures = ref false in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--json" -> json := true
        | "--fixtures" -> fixtures := true
        | _ -> usage ())
    Sys.argv;
  match
    let registry =
      if !fixtures then Lph_core.Lint_fixtures.violations () else Lph_core.Lint_registry.builtin ()
    in
    Lint.run registry
  with
  | report ->
      if !json then print_endline (Lph_core.Json.pretty (Lint.report_to_json report))
      else Format.printf "%a" Lint.pp_report report;
      exit (if Lint.has_errors report then 1 else 0)
  | exception e ->
      Printf.eprintf "lint.exe: internal failure: %s\n" (Printexc.to_string e);
      exit 2
