(* Static analyzer entry point: runs every lint rule over the built-in
   registry (or the seeded violation fixtures) and reports typed
   diagnostics.

   Exit codes: 0 = no error-severity finding, 1 = at least one error,
   2 = usage / internal failure. CI runs `lint.exe --json` and
   `lint.exe --optimize --json` (must exit 0) and `lint.exe --fixtures`
   / `lint.exe --fixtures --optimize` (must exit 1). *)

module Lint = Lph_core.Lint
module D = Lph_core.Diagnostic

let usage () =
  prerr_endline
    "usage: lint.exe [--json] [--fixtures] [--optimize] [--rules]\n\
    \  --json      emit the lph-lint-2 JSON report instead of text\n\
    \  --fixtures  analyse the seeded violation fixtures instead of the registry\n\
    \  --optimize  additionally run the certificate-budget optimiser rules\n\
    \              (budget/slack, budget/reduction-consistency, budget/lower-bound-replay)\n\
    \  --rules     print the rule catalogue (id, severity, theorem) and exit 0";
  exit 2

let print_rules () =
  List.iter
    (fun rule ->
      let explanation, theorem = D.rule_doc rule in
      Printf.printf "%-28s %-7s %s\n    %s\n" (D.rule_id rule)
        (D.severity_to_string (D.rule_severity rule))
        theorem explanation)
    D.all_rules;
  exit 0

let () =
  let json = ref false and fixtures = ref false and optimize = ref false and rules = ref false in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--json" -> json := true
        | "--fixtures" -> fixtures := true
        | "--optimize" -> optimize := true
        | "--rules" -> rules := true
        | _ -> usage ())
    Sys.argv;
  if !rules then print_rules ();
  match
    let registry =
      if !fixtures then Lph_core.Lint_fixtures.violations () else Lph_core.Lint_registry.builtin ()
    in
    Lint.run ~optimize:!optimize registry
  with
  | report ->
      if !json then print_endline (Lph_core.Json.pretty (Lint.report_to_json report))
      else Format.printf "%a" Lint.pp_report report;
      exit (if Lint.has_errors report then 1 else 0)
  | exception e ->
      Printf.eprintf "lint.exe: internal failure: %s\n" (Printexc.to_string e);
      exit 2
