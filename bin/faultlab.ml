(* faultlab: the Byzantine fault axis, standalone.

   Reruns the shipped workloads (2-COL / 3-COL games, EULERIAN through
   the cluster reduction, Fagin-compiled 2-COLORABLE, the Σ2 robust
   verifier) under each named fault model, reporting the adversarial
   schedule search's verdict — survive / flip / diverge — the minimum
   flipping budget and the replay spec. Then probes soundness on
   no-instances: no in-budget Byzantine plan may flip reject into
   accept, under any game engine.

   Exit status: 0 when every soundness probe passes, 1 otherwise.

     faultlab.exe [--smoke] [--seed N] [--f N]

   --smoke trims the sweep for CI (two workloads, two models, the
   ambient LPH_ENGINE only) and is the configuration the faultlab-smoke
   job runs under LPH_ENGINE={sat,cegar}. *)

open Lph_core

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let arg_int flag default =
    let v = ref default in
    Array.iteri
      (fun i a -> if a = flag && i + 1 < Array.length Sys.argv then
          match int_of_string_opt Sys.argv.(i + 1) with Some x -> v := x | None -> ())
      Sys.argv;
    !v
  in
  let seed = arg_int "--seed" 1 in
  let f = arg_int "--f" 1 in
  let t0 = Unix.gettimeofday () in

  (* ---------------------------------------------------------------- *)
  (* Axis sweep: workloads × models.                                   *)
  let workloads = Fault_workloads.shipped () in
  let workloads = if smoke then List.filteri (fun i _ -> i < 2) workloads else workloads in
  let models = Fault_workloads.models ~f in
  let models =
    if smoke then
      List.filter
        (fun m ->
          match Fault_model.name m with
          | Fault_model.Crash_stop | Fault_model.Byzantine_corrupt -> true
          | Fault_model.Omission | Fault_model.Byzantine_forge -> false)
        models
    else models
  in
  Printf.printf "fault axis: %d workloads x %d models, seed %d, budget %d evals\n"
    (List.length workloads) (List.length models) seed
    (Fault_search.search_budget ());
  Printf.printf "%-20s %-22s %-8s %-6s %-6s %-9s %s\n" "workload" "model" "verdict" "flip@"
    "evals" "overhead" "replay";
  List.iter
    (fun w ->
      List.iter
        (fun model ->
          let r = Fault_search.search ~seed ~model w in
          Printf.printf "%-20s %-22s %-8s %-6s %-6d %-9d %s\n" r.Fault_search.r_workload
            r.Fault_search.r_model
            (Fault_search.verdict_string r.Fault_search.r_verdict
            ^ if r.Fault_search.r_degraded then "*" else "")
            (match r.Fault_search.r_flip_budget with Some b -> string_of_int b | None -> "-")
            r.Fault_search.r_evals r.Fault_search.r_round_overhead
            (Option.value ~default:"-" r.Fault_search.r_spec))
        models)
    workloads;
  Printf.printf "(* = survivors' verdict certified sound under quorum degradation)\n";

  (* ---------------------------------------------------------------- *)
  (* Soundness probes on no-instances.                                 *)
  let engines =
    if smoke then
      [ ((match Sys.getenv_opt "LPH_ENGINE" with Some e when e <> "" -> e | _ -> "auto"), `Auto) ]
    else Fault_search.engines
  in
  let seeds = if smoke then [ seed; seed + 1 ] else List.init 5 (fun i -> seed + i) in
  let byzantine =
    List.filter
      (fun m ->
        match Fault_model.name m with
        | Fault_model.Byzantine_corrupt | Fault_model.Byzantine_forge -> true
        | Fault_model.Crash_stop | Fault_model.Omission -> false)
      (Fault_workloads.models ~f @ Fault_workloads.models ~f:(f + 1))
  in
  let violations = ref 0 in
  List.iter
    (fun fx ->
      List.iter
        (fun model ->
          let vs =
            Fault_search.cert_soundness ~engines ~model ~seeds fx.Fault_workloads.f_arbiter
              fx.Fault_workloads.f_graph ~ids:fx.Fault_workloads.f_ids
              ~universes:fx.Fault_workloads.f_universes
          in
          violations := !violations + List.length vs;
          List.iter
            (fun v -> Printf.printf "SOUNDNESS VIOLATION %s: %s\n" fx.Fault_workloads.f_name v)
            vs)
        byzantine)
    (Fault_workloads.soundness_fixtures ());
  Printf.printf "soundness: %d fixtures x %d models x %d seeds x %d engines, %d violations (%.2fs)\n"
    (List.length (Fault_workloads.soundness_fixtures ()))
    (List.length byzantine) (List.length seeds) (List.length engines) !violations
    (Unix.gettimeofday () -. t0);
  exit (if !violations > 0 then 1 else 0)
